package live

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"radar/internal/metrics"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/routing"
	"radar/internal/sim"
	"radar/internal/simevent"
	"radar/internal/simnet"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Driver replays the simulator's exact event schedule against a live
// fleet: one generator stream per gateway, the periodic measurement,
// placement, and census ticks, all paced by the same discrete-event engine
// the simulator runs on. Virtual time is the driver's; the clock-less
// nodes only learn it from request parameters. Because the schedule
// structure — which events exist, their times, and their tie-breaking
// sequence numbers — matches sim.Simulation.RunContext call for call, a
// fleet driven over loopback reproduces the simulation's decision sequence
// and metrics, which is what the equivalence test pins.
//
// The driver is single-threaded: every control operation in the fleet is
// one engine event, executed serially. That is also what makes the nodes'
// cross-node RPCs deadlock-free (no two placement passes overlap).
//
// Network accounting (byte-hops, latencies, control overhead) runs on the
// driver's own simnet.Network and metrics.Collector — the live transport
// carries the real bytes, the model prices them, exactly as the simulator
// prices its virtual transfers.
type Driver struct {
	cfg     Config
	urls    []string
	routes  *routing.Table
	n       int
	redLocs []topology.NodeID

	engine *simevent.Engine
	net    *simnet.Network
	col    *metrics.Collector
	gen    workload.Generator
	rngs   []*rand.Rand
	client *http.Client

	down      []bool
	decisions []Event

	droppedChoices int64
	timedOut       int64
	repairByteHops int64
	failures       int64
	faultsSeen     bool

	hooks []hook
	ran   bool
}

// hook is a test-scheduled engine event (see At).
type hook struct {
	at time.Duration
	fn func()
}

// driverHTTPTimeout bounds every driver request as a backstop; loopback
// requests answer in microseconds and killed listeners refuse immediately,
// so the limit only matters if a node wedges entirely.
const driverHTTPTimeout = 30 * time.Second

// NewDriver builds a driver for a fleet reachable at urls (base URL per
// node ID, matching the configured topology).
func NewDriver(cfg Config, urls []string) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	routes := routing.New(cfg.Sim.Topo)
	n := routes.NumNodes()
	if len(urls) != n {
		return nil, fmt.Errorf("live: %d node URLs for %d nodes", len(urls), n)
	}
	col, err := metrics.New(cfg.Sim.MetricsBucket)
	if err != nil {
		return nil, err
	}
	col.Reserve(cfg.Sim.Duration)
	network, err := simnet.New(cfg.Sim.Net, n, col)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		cfg:     cfg,
		urls:    append([]string(nil), urls...),
		routes:  routes,
		n:       n,
		redLocs: RedirectorLocations(routes, cfg.Sim.NumRedirectors),
		engine:  simevent.New(),
		net:     network,
		col:     col,
		gen:     cfg.Sim.Workload,
		rngs:    make([]*rand.Rand, n),
		down:    make([]bool, n),
		client: &http.Client{
			Timeout: driverHTTPTimeout,
			// 302s are scheduled, not followed: the redirect's arrival at the
			// chosen host is a separate engine event at its virtual time.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
	for i := 0; i < n; i++ {
		d.rngs[i] = workload.Stream(cfg.Sim.Seed, uint64(i))
	}
	return d, nil
}

// At schedules fn to run as an engine event at virtual time at, before Run
// is called. Tests use it to inject mid-replay actions — killing a node,
// marking it down — at a deterministic point of the schedule without
// racing the single-threaded driver.
func (d *Driver) At(at time.Duration, fn func()) {
	d.hooks = append(d.hooks, hook{at: at, fn: fn})
}

// MarkDown records a node as crashed and broadcasts the mark to the
// remaining fleet, so redirectors fail subsequent choices over. Tests call
// it right after Fleet.Kill; the driver also calls it itself when a
// request to the node fails at the transport.
func (d *Driver) MarkDown(i topology.NodeID) { d.markDown(i) }

// Close releases the driver's idle HTTP connections; their keep-alive
// goroutines would otherwise outlive the run and trip the goroutine-leak
// check the integration harness runs at teardown.
func (d *Driver) Close() { d.client.CloseIdleConnections() }

// Decisions returns the replayed placement decision sequence (migrate,
// replicate, drop, refuse, defer — copies excluded), in the order the
// fleet's placement passes produced them. The equivalence test compares
// this against the simulator's observer sequence.
func (d *Driver) Decisions() []Event {
	return append([]Event(nil), d.decisions...)
}

// Run replays the full schedule for cfg.Sim.Duration of virtual time and
// assembles the same results schema the simulator produces. Run must be
// called at most once.
func (d *Driver) Run(ctx context.Context) (*sim.Results, error) {
	if d.ran {
		return nil, fmt.Errorf("live: driver already ran")
	}
	d.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Schedule in the simulator's order: generators, measurement,
	// placement, census, workload switch. Sequence numbers are assigned at
	// Schedule time, so matching this order is what aligns same-instant
	// tie-breaking with the simulation.
	d.scheduleGenerators()
	d.scheduleMeasurement()
	if d.cfg.Sim.DynamicPlacement {
		d.schedulePlacement()
	}
	d.scheduleCensus()
	if sw := d.cfg.Sim.WorkloadSwitch; sw.To != nil {
		if err := d.engine.Schedule(sw.At, func(time.Duration) { d.gen = sw.To }); err != nil {
			return nil, fmt.Errorf("live: scheduling workload switch: %w", err)
		}
	}
	for _, h := range d.hooks {
		h := h
		if err := d.engine.Schedule(h.at, func(time.Duration) { h.fn() }); err != nil {
			return nil, fmt.Errorf("live: scheduling hook at %v: %w", h.at, err)
		}
	}
	if done := ctx.Done(); done != nil {
		d.engine.SetInterrupt(0, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
		defer d.engine.SetInterrupt(0, nil)
	}
	d.engine.Run(d.cfg.Sim.Duration)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.results(), nil
}

// scheduleGenerators starts one phase-offset request stream per gateway,
// drawing objects and inter-arrival gaps from the same seeded PRNG streams
// the simulator uses.
func (d *Driver) scheduleGenerators() {
	for i := 0; i < d.n; i++ {
		g := topology.NodeID(i)
		rate := d.cfg.Sim.NodeRequestRPS
		if d.cfg.Sim.NodeRates != nil {
			rate = d.cfg.Sim.NodeRates[i]
		}
		if rate == 0 {
			continue
		}
		spacing := time.Duration(float64(time.Second) / rate)
		phase := spacing * time.Duration(i) / time.Duration(d.n)
		var emit simevent.Event
		emit = func(now time.Duration) {
			d.dispatch(now, g, d.gen.Next(g, d.rngs[g]))
			next := spacing
			if d.cfg.Sim.PoissonArrivals {
				next = time.Duration(d.rngs[g].ExpFloat64() * float64(spacing))
				if next <= 0 {
					next = time.Nanosecond
				}
			}
			if now+next <= d.cfg.Sim.Duration {
				_ = d.engine.Schedule(now+next, emit)
			}
		}
		_ = d.engine.Schedule(phase, emit)
	}
}

// dispatch runs one request's redirector hop: GET the object from its
// redirector at virtual time t1 (gateway -> redirector control latency)
// and schedule the 302's arrival at the chosen host. The redirector
// mutates its distribution state (request counts, choice rotation) during
// this call — at dispatch time, exactly when the simulator calls
// ChooseReplica.
func (d *Driver) dispatch(t0 time.Duration, g topology.NodeID, id object.ID) {
	loc := d.redLocs[int(id)%len(d.redLocs)]
	t1 := d.net.ControlLatency(t0, d.routes.Distance(g, loc))
	if d.down[loc] {
		d.col.RecordFailedRequest(t1) // redirector crashed: request lost
		return
	}
	u := fmt.Sprintf("%s%s%d?g=%d&now=%d", d.urls[loc], PathObj, int64(id), int(g), int64(t1))
	res, err := d.client.Get(u)
	if err != nil {
		d.markDown(loc)
		d.col.RecordFailedRequest(t1)
		return
	}
	_, _ = io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode == http.StatusNotFound {
		// No choosable replica (every copy on crashed hosts): the request
		// fails at the redirector, as in the simulator.
		d.droppedChoices++
		d.col.RecordFailedRequest(t1)
		return
	}
	host, err1 := strconv.Atoi(res.Header.Get(HeaderHost))
	arrive, err2 := strconv.ParseInt(res.Header.Get(HeaderArrive), 10, 64)
	serveURL := res.Header.Get("Location")
	if res.StatusCode != http.StatusFound || err1 != nil || err2 != nil ||
		host < 0 || host >= d.n || serveURL == "" {
		// A malformed answer from a half-dead node: treat like a transport
		// failure.
		d.markDown(loc)
		d.col.RecordFailedRequest(t1)
		return
	}
	h := topology.NodeID(host)
	_ = d.engine.Schedule(time.Duration(arrive), func(now time.Duration) {
		d.arrive(now, g, h, id, t0, serveURL)
	})
}

// arrive runs a request's arrival at the chosen host: admission into the
// FCFS queue (or client-timeout refusal) over the serve endpoint, then the
// completion scheduled at the returned service time. The completion's
// engine sequence number is reserved here, at admission — the simulator
// reserves it at the same point, which is what keeps same-instant
// completions ordered identically.
func (d *Driver) arrive(now time.Duration, g, h topology.NodeID, id object.ID, t0 time.Duration, serveURL string) {
	if d.down[h] {
		d.droppedChoices++ // chosen replica crashed in flight
		d.col.RecordFailedRequest(now)
		return
	}
	res, err := d.client.Get(serveURL)
	if err != nil {
		d.markDown(h)
		d.droppedChoices++
		d.col.RecordFailedRequest(now)
		return
	}
	_, _ = io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode == http.StatusServiceUnavailable && res.Header.Get(HeaderTimeout) != "" {
		d.timedOut++ // abandoned by the client-timeout model; not a failure
		return
	}
	doneNS, perr := strconv.ParseInt(res.Header.Get(HeaderDone), 10, 64)
	if res.StatusCode != http.StatusOK || perr != nil {
		d.markDown(h)
		d.droppedChoices++
		d.col.RecordFailedRequest(now)
		return
	}
	seq := d.engine.ReserveSeq()
	_ = d.engine.ScheduleHandlerReserved(time.Duration(doneNS), seq, &completion{
		d: d, g: g, h: h, id: id, t0: t0,
	})
}

// completion is the scheduled FCFS service completion of one admitted
// request: report it to the host (access counts, load measurement), then
// price the response bytes home and record the end-to-end latency.
type completion struct {
	d    *Driver
	g, h topology.NodeID
	id   object.ID
	t0   time.Duration
}

// Fire implements simevent.Handler.
func (c *completion) Fire(now time.Duration) {
	d := c.d
	if d.down[c.h] {
		// Host crashed while the request sat in its queue.
		d.col.RecordFailedRequest(now)
		return
	}
	msg := CompleteMsg{Object: int64(c.id), Gateway: int(c.g), Now: int64(now)}
	if err := d.post(d.urls[c.h], PathComplete, &msg, nil); err != nil {
		d.markDown(c.h)
		d.col.RecordFailedRequest(now)
		return
	}
	deliver := d.net.Transfer(now, d.routes.PreferencePath(c.h, c.g),
		int64(d.cfg.Sim.Universe.SizeBytes), simnet.Payload)
	d.col.RecordLatency(deliver, deliver-c.t0)
}

// scheduleMeasurement drives the periodic load-measurement tick: close
// every live node's interval over the wire and sample the same max-load
// and tracked-host series the simulator samples.
func (d *Driver) scheduleMeasurement() {
	interval := d.cfg.Sim.Server.MeasurementInterval
	tracked := d.cfg.Sim.TrackedHost
	var tick simevent.Event
	tick = func(now time.Duration) {
		msg := TickMsg{Now: int64(now)}
		maxLoad := 0.0
		var trackedRep MeasureReply
		trackedOK := false
		for i := 0; i < d.n; i++ {
			if d.down[i] {
				continue
			}
			var rep MeasureReply
			if err := d.post(d.urls[i], PathMeasure, &msg, &rep); err != nil {
				d.markDown(topology.NodeID(i))
				continue
			}
			if rep.Load > maxLoad {
				maxLoad = rep.Load
			}
			if topology.NodeID(i) == tracked {
				trackedRep, trackedOK = rep, true
			}
		}
		d.col.RecordMaxLoad(now, maxLoad)
		if trackedOK {
			d.col.RecordHostLoad(now, trackedRep.Load, trackedRep.Lower, trackedRep.Upper)
		} else {
			d.col.RecordHostLoad(now, 0, 0, 0)
		}
		if now+interval <= d.cfg.Sim.Duration {
			_ = d.engine.Schedule(now+interval, tick)
		}
	}
	_ = d.engine.Schedule(interval, tick)
}

// schedulePlacement drives each host's periodic placement pass, staggered
// like the simulator's, applying every drained event to the driver's
// metrics and network accounting.
func (d *Driver) schedulePlacement() {
	interval := d.cfg.Sim.PlacementInterval
	for i := 0; i < d.n; i++ {
		i := i
		offset := time.Duration(0)
		if !d.cfg.Sim.PlacementSynchronized {
			offset = interval * time.Duration(i) / time.Duration(d.n)
		}
		var tick simevent.Event
		tick = func(now time.Duration) {
			if !d.down[i] {
				var rep PlaceReply
				msg := TickMsg{Now: int64(now)}
				if err := d.post(d.urls[i], PathPlace, &msg, &rep); err != nil {
					d.markDown(topology.NodeID(i))
				} else {
					d.applyEvents(rep.Events)
				}
			}
			if now+interval <= d.cfg.Sim.Duration {
				_ = d.engine.Schedule(now+interval, tick)
			}
		}
		_ = d.engine.Schedule(interval+offset, tick)
	}
}

// scheduleCensus samples the fleet-wide replica census once per placement
// interval by summing each redirector node's count of its own objects.
func (d *Driver) scheduleCensus() {
	interval := d.cfg.Sim.PlacementInterval
	floor := d.cfg.Sim.Protocol.ReplicaFloor
	var tick simevent.Event
	tick = func(now time.Duration) {
		total, below := 0, 0
		for _, loc := range d.redLocs {
			if d.down[loc] {
				continue
			}
			var rep CensusReply
			if err := d.get(d.urls[loc], PathCensus, &rep); err != nil {
				d.markDown(loc)
				continue
			}
			total += rep.TotalReplicas
			below += rep.BelowFloor
		}
		d.col.RecordReplicaCensus(now, float64(total)/float64(d.cfg.Sim.Universe.Count))
		if floor > 1 {
			d.col.RecordBelowFloor(now, below, float64(below)*interval.Seconds())
		}
		if now+interval <= d.cfg.Sim.Duration {
			_ = d.engine.Schedule(now+interval, tick)
		}
	}
	_ = d.engine.Schedule(interval, tick)
}

// applyEvents replays a drained node event log into the driver's
// accounting, mirroring the simulator's chargingObserver: placement
// decisions feed the metrics counters and charge their control messages,
// copies charge the object transfer as protocol overhead. Charges are
// bucketed sums, so replaying them when the log drains — rather than at
// the instant they happened — changes nothing.
func (d *Driver) applyEvents(evs []Event) {
	size := int64(d.cfg.Sim.Universe.SizeBytes)
	for _, e := range evs {
		at := time.Duration(e.At)
		id := object.ID(e.Object)
		from := topology.NodeID(e.From)
		to := topology.NodeID(e.To)
		switch e.Kind {
		case EventMigrate:
			kind, err := ParseMoveKind(e.Move)
			if err != nil {
				continue
			}
			d.chargeHandshake(at, from, to)
			d.chargeNotify(at, to, id)
			d.col.OnMigrate(at, id, from, to, kind)
			d.decisions = append(d.decisions, e)
		case EventReplicate:
			kind, err := ParseMoveKind(e.Move)
			if err != nil {
				continue
			}
			d.chargeHandshake(at, from, to)
			d.chargeNotify(at, to, id)
			if kind == protocol.RepairMove {
				d.repairByteHops += size * int64(d.routes.Distance(from, to))
			}
			d.col.OnReplicate(at, id, from, to, kind)
			d.decisions = append(d.decisions, e)
		case EventDrop:
			d.chargeNotify(at, from, id)
			d.col.OnDrop(at, id, from)
			d.decisions = append(d.decisions, e)
		case EventRefuse:
			method, err := ParseMethod(e.Method)
			if err != nil {
				continue
			}
			d.chargeHandshake(at, from, to)
			d.col.OnRefuse(at, id, from, to, method)
			d.decisions = append(d.decisions, e)
		case EventDefer:
			method, err := ParseMethod(e.Method)
			if err != nil {
				continue
			}
			d.col.OnDefer(at, id, from, to, method)
			d.decisions = append(d.decisions, e)
		case EventCopy:
			d.net.Transfer(at, d.routes.Path(from, to), size, simnet.Overhead)
		}
	}
}

// chargeHandshake prices a request/response control message pair.
func (d *Driver) chargeHandshake(now time.Duration, from, to topology.NodeID) {
	if d.cfg.Sim.ControlMsgBytes == 0 {
		return
	}
	d.net.ControlMessage(now, d.routes.Path(from, to), d.cfg.Sim.ControlMsgBytes)
	d.net.ControlMessage(now, d.routes.Path(to, from), d.cfg.Sim.ControlMsgBytes)
}

// chargeNotify prices a one-way notification to the object's redirector.
func (d *Driver) chargeNotify(now time.Duration, from topology.NodeID, id object.ID) {
	if d.cfg.Sim.ControlMsgBytes == 0 {
		return
	}
	loc := d.redLocs[int(id)%len(d.redLocs)]
	d.net.ControlMessage(now, d.routes.Path(from, loc), d.cfg.Sim.ControlMsgBytes)
}

// markDown records a crashed node and broadcasts the mark to the live
// fleet, best-effort, so redirectors stop choosing its replicas.
func (d *Driver) markDown(i topology.NodeID) {
	if d.down[i] {
		return
	}
	d.down[i] = true
	d.faultsSeen = true
	d.failures++
	msg := MarkMsg{Host: int(i), Down: true}
	for j := 0; j < d.n; j++ {
		if d.down[j] {
			continue
		}
		_ = d.post(d.urls[j], PathMark, &msg, nil)
	}
}

// post issues one un-retried POST: the driver's control ops (measure,
// place, complete) are not idempotent, so a failure marks the node down
// instead of retrying. The retried, idempotent RPC discipline lives in the
// nodes' own client.
func (d *Driver) post(base, path string, req, resp any) error {
	res, err := d.client.Post(base+path, "application/json", bytes.NewReader(Encode(req)))
	if err != nil {
		return err
	}
	return readReply(res, base, path, resp)
}

// get issues one un-retried GET.
func (d *Driver) get(base, path string, resp any) error {
	res, err := d.client.Get(base + path)
	if err != nil {
		return err
	}
	return readReply(res, base, path, resp)
}

func readReply(res *http.Response, base, path string, resp any) error {
	data, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("live: %s%s: status %d: %s", base, path, res.StatusCode, data)
	}
	if resp == nil {
		return nil
	}
	if v, ok := resp.(validator); ok {
		return Decode(data, v)
	}
	return jsonUnmarshal(data, resp)
}

// trimSeries caps a series at the number of full buckets the run covers,
// exactly as the simulator trims its own.
func (d *Driver) trimSeries(points []metrics.Point) []metrics.Point {
	full := int(d.cfg.Sim.Duration / d.cfg.Sim.MetricsBucket)
	if full < 1 {
		full = 1
	}
	if len(points) > full {
		return points[:full]
	}
	return points
}

// finalCensus returns the mean replica count per object at the horizon.
func (d *Driver) finalCensus() float64 {
	total := 0
	for _, loc := range d.redLocs {
		if d.down[loc] {
			continue
		}
		var rep CensusReply
		if err := d.get(d.urls[loc], PathCensus, &rep); err != nil {
			continue
		}
		total += rep.TotalReplicas
	}
	return float64(total) / float64(d.cfg.Sim.Universe.Count)
}

// results assembles the run's outputs in the simulator's schema. Live-only
// gaps are documented divergences: the invariants check needs in-process
// state (nil here), and the storage-layer aggregation has no live
// counterpart.
func (d *Driver) results() *sim.Results {
	// Final drain: events recorded since each node's last placement pass
	// (typically CreateObj copies on accepting nodes).
	for i := 0; i < d.n; i++ {
		if d.down[i] {
			continue
		}
		var rep EventsReply
		if err := d.get(d.urls[i], PathEvents, &rep); err != nil {
			d.markDown(topology.NodeID(i))
			continue
		}
		d.applyEvents(rep.Events)
	}
	cfg := d.cfg.Sim
	r := &sim.Results{
		WorkloadName:      cfg.Workload.Name(),
		Policy:            cfg.Policy,
		Dynamic:           cfg.DynamicPlacement,
		Duration:          cfg.Duration,
		Seed:              cfg.Seed,
		Bandwidth:         d.trimSeries(d.col.BandwidthSeries()),
		Latency:           d.trimSeries(d.col.LatencySeries()),
		LatencyP99:        d.trimSeries(d.col.LatencyQuantileSeries(0.99)),
		OverheadPct:       d.trimSeries(d.col.OverheadPercentSeries()),
		MaxLoad:           d.col.MaxLoadSeries(),
		HostLoad:          d.col.HostLoadSeries(),
		Replicas:          d.col.ReplicaSeries(),
		Counters:          d.col.Counters(),
		OverheadPercent:   d.col.OverheadPercent(),
		AvgReplicas:       d.finalCensus(),
		DroppedChoices:    d.droppedChoices,
		TimedOutRequests:  d.timedOut,
		Failures:          d.failures,
		FaultsEnabled:     d.faultsSeen,
		FailedRequests:    d.col.Counters().FailedRequests,
		FailedSeries:      d.trimSeries(d.col.FailedRequestSeries()),
		Outages:           d.col.Outages(),
		UnavailObjSecs:    d.col.UnavailableObjectSeconds(),
		BelowFloor:        d.col.BelowFloorSeries(),
		BelowFloorObjSecs: d.col.BelowFloorObjectSeconds(),
		RepairByteHops:    d.repairByteHops,
		HostStats:         make([]protocol.HostStats, d.n),
		TrackedHost:       cfg.TrackedHost,
		HighWatermark:     cfg.Protocol.HighWatermark,
		SandwichSlackRPS:  1e-9,
		StoreSpec:         cfg.Store.String(),
	}
	maxQ := 0
	var totalServed int64
	for i := 0; i < d.n; i++ {
		if d.down[i] {
			continue
		}
		var rep StatsReply
		if err := d.get(d.urls[i], PathStats, &rep); err != nil {
			continue
		}
		r.HostStats[i] = rep.Host
		if rep.MaxQueueLen > maxQ {
			maxQ = rep.MaxQueueLen
		}
		totalServed += rep.TotalServed
	}
	r.MaxQueueLen = maxQ
	r.TotalServed = totalServed
	r.BandwidthStats = metrics.Summarize(r.Bandwidth, 2)
	r.LatencyStats = metrics.Summarize(r.Latency, 2)
	r.AdjustmentTime, r.Adjusted = metrics.AdjustmentTime(r.Bandwidth, 1.10)
	r.MaxLoadPeak = metrics.MaxValue(r.MaxLoad)
	if len(r.MaxLoad) > 0 {
		tail := r.MaxLoad[len(r.MaxLoad)*3/4:]
		r.MaxLoadSettled = metrics.MaxValue(tail)
	}
	r.SandwichViolations = metrics.SandwichViolations(r.HostLoad, r.SandwichSlackRPS)
	if math.IsNaN(r.BandwidthStats.ReductionPercent) {
		r.BandwidthStats.ReductionPercent = 0
	}
	return r
}
