package live

import "sync"

// callDedup makes a mutating RPC handler idempotent and bounded, the
// buildbarn replicator service shape: message-ID-keyed verdict replay
// (at-most-once execution — a retry or duplicate of an already-executed
// message is answered from the cache), in-flight deduplication (a
// duplicate arriving while the first copy still executes waits for that
// execution's result instead of starting a second), and a concurrency
// limit on executions admitted per node. The verdict cache is retained for
// the node's lifetime: like the simulated plane's results map, a cached
// verdict must survive until the caller is known to have seen it, and the
// live plane has no confirmation leg — runs are bounded, so the cache is
// too.
type callDedup struct {
	sem chan struct{}

	mu       sync.Mutex
	done     map[uint64][]byte
	inflight map[uint64]chan struct{}
	cur      int
	peak     int
	executed int64
}

// newCallDedup builds a dedup gate admitting at most limit concurrent
// executions (limit must be positive).
func newCallDedup(limit int) *callDedup {
	return &callDedup{
		sem:      make(chan struct{}, limit),
		done:     make(map[uint64][]byte),
		inflight: make(map[uint64]chan struct{}),
	}
}

// do returns the reply for msgID, running fn at most once across all
// retries and concurrent duplicates of the message and holding its result
// for replay. fn runs inside the concurrency gate.
//
// fn reports whether it produced a verdict. A false return means fn could
// not execute at all (a free-running handler failing to take its node lock
// within the busy deadline): nothing is cached, the attempt does not count
// as an execution, and the caller answers 503 so the client's retry — same
// message ID — executes fn afresh. Concurrent duplicates waiting on a
// busy-failed first copy loop back and try executing themselves.
func (d *callDedup) do(msgID uint64, fn func() ([]byte, bool)) ([]byte, bool) {
	for {
		d.mu.Lock()
		if r, ok := d.done[msgID]; ok {
			d.mu.Unlock()
			return r, true
		}
		if ch, ok := d.inflight[msgID]; ok {
			// A concurrent duplicate: wait for the first copy's execution
			// and loop back to read its cached verdict.
			d.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		d.inflight[msgID] = ch
		d.mu.Unlock()

		d.sem <- struct{}{}
		d.mu.Lock()
		d.cur++
		if d.cur > d.peak {
			d.peak = d.cur
		}
		d.mu.Unlock()

		r, ok := fn()

		d.mu.Lock()
		d.cur--
		if ok {
			d.executed++
			d.done[msgID] = r
		}
		delete(d.inflight, msgID)
		d.mu.Unlock()
		<-d.sem
		close(ch)
		return r, ok
	}
}

// Peak returns the high-water mark of concurrent executions.
func (d *callDedup) Peak() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// Executed returns the number of actual executions (cache hits excluded).
func (d *callDedup) Executed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.executed
}
