package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/ctrlplane"
)

// ErrRPCLost reports a control RPC abandoned after the full retry budget —
// the live counterpart of ctrlplane's Lost outcome: the caller cannot
// distinguish "never executed" from "executed, reply lost"; message-ID
// idempotence makes a same-ID re-issue safe.
var ErrRPCLost = errors.New("live: rpc lost after retry budget")

// ErrRetryBudget reports an RPC whose retries were cut short because the
// target peer's retry budget ran dry: a peer that keeps failing stops
// absorbing rounds of backoff-and-retry from this client until successful
// calls refill its bucket.
var ErrRetryBudget = errors.New("live: peer retry budget exhausted")

// ErrPeerUnreachable reports an RPC refused without any attempt because the
// target's URL is poisoned (chaos partition) — the live analog of a cut
// link: the message never leaves the node.
var ErrPeerUnreachable = errors.New("live: peer unreachable (partitioned)")

// RPCError is the typed failure of a control RPC: which call, against which
// base URL, how many attempts were spent, and why it ultimately failed
// (ErrRPCLost, ErrRetryBudget, or ErrPeerUnreachable via errors.Is).
type RPCError struct {
	Op       string // HTTP path of the call
	Target   string // base URL of the peer
	Attempts int    // attempts actually issued
	Err      error
}

// Error implements error.
func (e *RPCError) Error() string {
	return fmt.Sprintf("live: rpc %s to %s failed after %d attempt(s): %v", e.Op, e.Target, e.Attempts, e.Err)
}

// Unwrap exposes the cause for errors.Is.
func (e *RPCError) Unwrap() error { return e.Err }

// retryBudget is a per-peer token bucket in the classic retry-budget shape:
// every first attempt against a peer earns it a fraction of a token, every
// retry spends a whole one, and an empty bucket suppresses further retries
// (first attempts always go through). A healthy peer never notices the
// budget; a dying one stops soaking up rounds of backoff from every caller.
type retryBudget struct {
	cap float64

	mu     sync.Mutex
	tokens map[string]float64
}

// retryBudgetEarn is the bucket refill per first attempt (the conventional
// 10% retry ratio).
const retryBudgetEarn = 0.1

func newRetryBudget(tokens int) *retryBudget {
	if tokens <= 0 {
		return nil // disabled: unlimited retries (driver-paced default)
	}
	return &retryBudget{cap: float64(tokens), tokens: make(map[string]float64)}
}

// onAttempt credits the peer for a fresh call. Buckets start full.
func (b *retryBudget) onAttempt(target string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	t, ok := b.tokens[target]
	if !ok {
		t = b.cap
	}
	t += retryBudgetEarn
	if t > b.cap {
		t = b.cap
	}
	b.tokens[target] = t
	b.mu.Unlock()
}

// allowRetry spends one token toward a retry against the peer, reporting
// whether the bucket had one.
func (b *retryBudget) allowRetry(target string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tokens[target]
	if !ok {
		t = b.cap
	}
	if t < 1 {
		b.tokens[target] = t
		return false
	}
	b.tokens[target] = t - 1
	return true
}

// rpcClient carries control RPCs over HTTP with the simulated control
// plane's retry discipline, reusing ctrlplane.Params verbatim: a
// per-attempt timeout, a bounded retry budget, and the plane's capped
// exponential backoff with jitter (ctrlplane.Backoff). Transport errors
// and 503s (a node refusing while busy) are retried; any other non-2xx
// status is a terminal protocol answer. On top of the per-call schedule, an
// optional per-peer retry budget (free-running mode) cuts retries against a
// peer that keeps failing, and an optional injected latency (the chaos
// controller's client-hop delay) stalls every attempt.
type rpcClient struct {
	params ctrlplane.Params
	http   *http.Client
	budget *retryBudget

	stopCtx  context.Context
	stopFn   context.CancelFunc
	latency  atomic.Int64 // injected per-attempt delay, ns
	rngMu    sync.Mutex
	rng      *rand.Rand
	attempts int64
	retries  int64
	lost     int64
	budgeted int64
}

// newRPCClient builds a client from resolved params, a seeded jitter
// source, and a per-peer retry budget of budgetTokens (0 disables it).
func newRPCClient(params ctrlplane.Params, rng *rand.Rand, budgetTokens int) *rpcClient {
	ctx, cancel := context.WithCancel(context.Background())
	return &rpcClient{
		params:  params.WithDefaults(),
		http:    &http.Client{},
		budget:  newRetryBudget(budgetTokens),
		stopCtx: ctx,
		stopFn:  cancel,
		rng:     rng,
	}
}

// Close aborts in-flight calls and backoff waits and releases idle
// connections; subsequent calls fail immediately. A node being stopped or
// killed must not sit out multi-second retry schedules.
func (c *rpcClient) Close() {
	c.stopFn()
	c.http.CloseIdleConnections()
}

// SetLatency injects a fixed delay before every attempt (chaos's client-hop
// latency). Zero removes it.
func (c *rpcClient) SetLatency(d time.Duration) { c.latency.Store(int64(d)) }

// sleep waits d, aborted early by Close.
func (c *rpcClient) sleep(d time.Duration) bool {
	if d <= 0 {
		return c.stopCtx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stopCtx.Done():
		return false
	}
}

// backoffWait sleeps the schedule's next jittered wait.
func (c *rpcClient) backoffWait(b *ctrlplane.Backoff) bool {
	c.rngMu.Lock()
	w := b.Wait(c.rng)
	c.rngMu.Unlock()
	return c.sleep(w)
}

// call POSTs req as JSON to base+path and decodes the JSON reply into
// resp, retrying per the ctrlplane schedule. A nil resp discards the body.
func (c *rpcClient) call(base, path string, req, resp any) error {
	body := Encode(req)
	return c.roundTrip(base, path, func(ctx context.Context) (*http.Request, error) {
		r, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		r.Header.Set("Content-Type", "application/json")
		return r, nil
	}, resp)
}

// get issues a retried GET with query parameters, decoding the JSON reply
// into resp.
func (c *rpcClient) get(base, path string, query url.Values, resp any) error {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return c.roundTrip(base, path, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, resp)
}

func (c *rpcClient) roundTrip(base, path string, build func(context.Context) (*http.Request, error), resp any) error {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		// A poisoned peer-table entry: the partition swallows the message
		// before it is ever sent. No attempt, no retry, no budget charge.
		return &RPCError{Op: path, Target: base, Err: ErrPeerUnreachable}
	}
	c.budget.onAttempt(base)
	backoff := c.params.NewBackoff()
	attempts := 0
	for attempt := 0; attempt <= c.params.Retries; attempt++ {
		if attempt > 0 {
			if !c.budget.allowRetry(base) {
				atomic.AddInt64(&c.budgeted, 1)
				return &RPCError{Op: path, Target: base, Attempts: attempts, Err: ErrRetryBudget}
			}
			atomic.AddInt64(&c.retries, 1)
			if !c.backoffWait(&backoff) {
				break // client closed mid-backoff
			}
		}
		if d := time.Duration(c.latency.Load()); d > 0 && !c.sleep(d) {
			break
		}
		atomic.AddInt64(&c.attempts, 1)
		attempts++
		ctx, cancel := context.WithTimeout(c.stopCtx, c.params.Timeout)
		req, err := build(ctx)
		if err != nil {
			cancel()
			return err
		}
		res, err := c.http.Do(req)
		if err != nil {
			cancel()
			if c.stopCtx.Err() != nil {
				break // client closed: abandon, don't spin the schedule
			}
			continue // transport failure: retry
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		cancel()
		if err != nil || res.StatusCode == http.StatusServiceUnavailable {
			continue // truncated reply or busy node: retry
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("live: %s %s: status %d: %s", req.Method, req.URL.Path, res.StatusCode, data)
		}
		if resp == nil {
			return nil
		}
		if v, ok := resp.(validator); ok {
			return Decode(data, v)
		}
		if err := jsonUnmarshal(data, resp); err != nil {
			return err
		}
		return nil
	}
	atomic.AddInt64(&c.lost, 1)
	return &RPCError{Op: path, Target: base, Attempts: attempts, Err: ErrRPCLost}
}

// Stats returns (attempts, retries, lost) counters.
func (c *rpcClient) Stats() (attempts, retries, lost int64) {
	return atomic.LoadInt64(&c.attempts), atomic.LoadInt64(&c.retries), atomic.LoadInt64(&c.lost)
}

// BudgetDenials returns how many calls were cut short by the per-peer
// retry budget.
func (c *rpcClient) BudgetDenials() int64 { return atomic.LoadInt64(&c.budgeted) }
