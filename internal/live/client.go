package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/ctrlplane"
)

// ErrRPCLost reports a control RPC abandoned after the full retry budget —
// the live counterpart of ctrlplane's Lost outcome: the caller cannot
// distinguish "never executed" from "executed, reply lost"; message-ID
// idempotence makes a same-ID re-issue safe.
var ErrRPCLost = errors.New("live: rpc lost after retry budget")

// rpcClient carries control RPCs over HTTP with the simulated control
// plane's retry discipline, reusing ctrlplane.Params verbatim: a
// per-attempt timeout, a bounded retry budget, and the plane's capped
// exponential backoff with jitter (ctrlplane.Backoff). Transport errors
// and 503s (a node refusing while busy) are retried; any other non-2xx
// status is a terminal protocol answer.
type rpcClient struct {
	params ctrlplane.Params
	http   *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	attempts int64
	retries  int64
	lost     int64
}

// newRPCClient builds a client from resolved params and a seeded jitter
// source.
func newRPCClient(params ctrlplane.Params, rng *rand.Rand) *rpcClient {
	return &rpcClient{
		params: params.WithDefaults(),
		http:   &http.Client{},
		rng:    rng,
	}
}

// backoffWait sleeps the schedule's next jittered wait.
func (c *rpcClient) backoffWait(b *ctrlplane.Backoff) {
	c.rngMu.Lock()
	w := b.Wait(c.rng)
	c.rngMu.Unlock()
	time.Sleep(w)
}

// call POSTs req as JSON to base+path and decodes the JSON reply into
// resp, retrying per the ctrlplane schedule. A nil resp discards the body.
func (c *rpcClient) call(base, path string, req, resp any) error {
	body := Encode(req)
	return c.roundTrip(func(ctx context.Context) (*http.Request, error) {
		r, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		r.Header.Set("Content-Type", "application/json")
		return r, nil
	}, resp)
}

// get issues a retried GET with query parameters, decoding the JSON reply
// into resp.
func (c *rpcClient) get(base, path string, query url.Values, resp any) error {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return c.roundTrip(func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, resp)
}

func (c *rpcClient) roundTrip(build func(context.Context) (*http.Request, error), resp any) error {
	backoff := c.params.NewBackoff()
	for attempt := 0; attempt <= c.params.Retries; attempt++ {
		atomic.AddInt64(&c.attempts, 1)
		if attempt > 0 {
			atomic.AddInt64(&c.retries, 1)
			c.backoffWait(&backoff)
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.params.Timeout)
		req, err := build(ctx)
		if err != nil {
			cancel()
			return err
		}
		res, err := c.http.Do(req)
		if err != nil {
			cancel()
			continue // transport failure: retry
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		cancel()
		if err != nil || res.StatusCode == http.StatusServiceUnavailable {
			continue // truncated reply or busy node: retry
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("live: %s %s: status %d: %s", req.Method, req.URL.Path, res.StatusCode, data)
		}
		if resp == nil {
			return nil
		}
		if v, ok := resp.(validator); ok {
			return Decode(data, v)
		}
		if err := jsonUnmarshal(data, resp); err != nil {
			return err
		}
		return nil
	}
	atomic.AddInt64(&c.lost, 1)
	return ErrRPCLost
}

// Stats returns (attempts, retries, lost) counters.
func (c *rpcClient) Stats() (attempts, retries, lost int64) {
	return atomic.LoadInt64(&c.attempts), atomic.LoadInt64(&c.retries), atomic.LoadInt64(&c.lost)
}
