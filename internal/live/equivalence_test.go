package live_test

import (
	"context"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/live/livetest"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/sim"
	"radar/internal/topology"
)

// decisionRecorder mirrors the live nodes' event log on the simulator
// side: every placement decision the protocol announces is recorded in
// the wire Event shape, so the two sequences compare field for field.
type decisionRecorder struct {
	events []live.Event
}

func (r *decisionRecorder) OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	r.events = append(r.events, live.Event{At: int64(now), Kind: live.EventMigrate, Object: int64(id), From: int(from), To: int(to), Move: kind.String()})
}

func (r *decisionRecorder) OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	r.events = append(r.events, live.Event{At: int64(now), Kind: live.EventReplicate, Object: int64(id), From: int(from), To: int(to), Move: kind.String()})
}

func (r *decisionRecorder) OnDrop(now time.Duration, id object.ID, host topology.NodeID) {
	r.events = append(r.events, live.Event{At: int64(now), Kind: live.EventDrop, Object: int64(id), From: int(host)})
}

func (r *decisionRecorder) OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	r.events = append(r.events, live.Event{At: int64(now), Kind: live.EventRefuse, Object: int64(id), From: int(from), To: int(to), Method: method.String()})
}

func (r *decisionRecorder) OnDefer(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	r.events = append(r.events, live.Event{At: int64(now), Kind: live.EventDefer, Object: int64(id), From: int(from), To: int(to), Method: method.String()})
}

// TestSimLiveEquivalence is the headline test pinning live mode to the
// simulator: one configuration drives both the deterministic simulation
// and a 3-node loopback fleet of real HTTP servers, and the sequence of
// placement decisions — every migration, replication, drop, and refusal,
// in order, with virtual timestamps — must be identical, along with the
// request-path aggregates. The simulator is the executable spec; any
// divergence on the live side is a bug in the transport lift.
func TestSimLiveEquivalence(t *testing.T) {
	cfg := liveConfig(t, topology.Line(3), 24, 20, 3*time.Minute)

	simCfg := cfg.Sim
	rec := &decisionRecorder{}
	simCfg.ExtraObserver = rec
	s, err := sim.New(simCfg)
	if err != nil {
		t.Fatalf("building simulation: %v", err)
	}
	simRes, err := s.Run()
	if err != nil {
		t.Fatalf("running simulation: %v", err)
	}

	h := livetest.Start(t, cfg)
	liveRes, err := h.Run(context.Background())
	if err != nil {
		t.Fatalf("running live fleet: %v", err)
	}

	liveDecisions := h.Driver.Decisions()
	if len(rec.events) == 0 {
		t.Fatal("simulation made no placement decisions; the workload is too small to pin anything")
	}
	if len(liveDecisions) != len(rec.events) {
		t.Fatalf("decision count: live %d, sim %d", len(liveDecisions), len(rec.events))
	}
	for i := range rec.events {
		if liveDecisions[i] != rec.events[i] {
			t.Fatalf("decision %d diverges:\n  live: %+v\n  sim:  %+v", i, liveDecisions[i], rec.events[i])
		}
	}

	// The request path must agree exactly too: same served/timed-out/
	// dropped totals, same placement counters, same final census.
	if liveRes.TotalServed != simRes.TotalServed {
		t.Errorf("TotalServed: live %d, sim %d", liveRes.TotalServed, simRes.TotalServed)
	}
	if liveRes.TimedOutRequests != simRes.TimedOutRequests {
		t.Errorf("TimedOutRequests: live %d, sim %d", liveRes.TimedOutRequests, simRes.TimedOutRequests)
	}
	if liveRes.DroppedChoices != simRes.DroppedChoices {
		t.Errorf("DroppedChoices: live %d, sim %d", liveRes.DroppedChoices, simRes.DroppedChoices)
	}
	if liveRes.Counters != simRes.Counters {
		t.Errorf("Counters: live %+v, sim %+v", liveRes.Counters, simRes.Counters)
	}
	if liveRes.AvgReplicas != simRes.AvgReplicas {
		t.Errorf("AvgReplicas: live %v, sim %v", liveRes.AvgReplicas, simRes.AvgReplicas)
	}
	if len(liveRes.Replicas) != len(simRes.Replicas) {
		t.Fatalf("census series length: live %d, sim %d", len(liveRes.Replicas), len(simRes.Replicas))
	}
	for i := range simRes.Replicas {
		if liveRes.Replicas[i] != simRes.Replicas[i] {
			t.Errorf("census sample %d: live %+v, sim %+v", i, liveRes.Replicas[i], simRes.Replicas[i])
		}
	}
	if len(liveRes.MaxLoad) != len(simRes.MaxLoad) {
		t.Fatalf("max-load series length: live %d, sim %d", len(liveRes.MaxLoad), len(simRes.MaxLoad))
	}
	for i := range simRes.MaxLoad {
		if liveRes.MaxLoad[i] != simRes.MaxLoad[i] {
			t.Errorf("max-load sample %d: live %+v, sim %+v", i, liveRes.MaxLoad[i], simRes.MaxLoad[i])
		}
	}
	if liveRes.FailedRequests != 0 || liveRes.Failures != 0 {
		t.Errorf("healthy fleet reported %d failed requests, %d crashes", liveRes.FailedRequests, liveRes.Failures)
	}
}
