package live_test

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"radar/internal/ctrlplane"
	"radar/internal/live"
	"radar/internal/live/chaos"
	"radar/internal/live/check"
	"radar/internal/live/livetest"
	"radar/internal/topology"
)

// freeRunConfig compresses a scenario to wall-clock scale: sub-second
// self-scheduled ticks and a fast RPC retry schedule, so a free-running
// integration test finishes in seconds.
func freeRunConfig(t *testing.T, topo *topology.Topology, wall time.Duration) live.Config {
	t.Helper()
	cfg := liveConfig(t, topo, 16, 20, wall)
	cfg.Sim.Protocol.ReplicaFloor = 2
	cfg.FreeRunning = true
	cfg.FreeRun = live.FreeRun{
		Measurement: 200 * time.Millisecond,
		Placement:   400 * time.Millisecond,
		Census:      400 * time.Millisecond,
	}
	cfg.RPC = ctrlplane.Params{
		Timeout:     time.Second,
		Retries:     3,
		BackoffBase: 20 * time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
	}
	return cfg
}

// awaitFloorConverged waits for the fleet's self-scheduled placement
// passes to finish the initial floor repair (objects seed with one
// replica; the floor demands more). Invariant checking starts from this
// converged state: the checker judges steady-state maintenance, not the
// boot transient — which under -race can legitimately outlast any
// reasonable convergence budget.
func awaitFloorConverged(t *testing.T, h *livetest.Harness, timeout time.Duration) {
	t.Helper()
	cfg := h.Fleet.Config()
	locs := live.RedirectorLocations(h.Fleet.Routes(), cfg.Sim.NumRedirectors)
	client := &http.Client{Timeout: 2 * time.Second}
	defer client.CloseIdleConnections()
	deadline := time.Now().Add(timeout)
	for {
		settled := true
		for _, loc := range locs {
			rep, ok := fetchCensus(t, client, h.Fleet.URL(loc))
			if !ok || rep.BelowFloor > 0 || rep.Zero > 0 {
				settled = false
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not repair the initial floor deficit within %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchCensus(t *testing.T, client *http.Client, base string) (live.CensusReply, bool) {
	t.Helper()
	var rep live.CensusReply
	res, err := client.Get(base + live.PathCensus)
	if err != nil {
		return rep, false
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil || res.StatusCode != http.StatusOK {
		return rep, false
	}
	if err := live.Decode(data, &rep); err != nil {
		t.Fatalf("decoding census: %v", err)
	}
	return rep, true
}

// startChecker wires an invariant checker to the harness fleet and starts
// its scrape loop; the returned stop function halts scraping.
func startChecker(h *livetest.Harness, interval, convergence time.Duration) (*check.Checker, func()) {
	cfg := h.Fleet.Config()
	checker := check.New(check.Config{
		URLs:        h.Fleet.URLs(),
		Redirectors: live.RedirectorLocations(h.Fleet.Routes(), cfg.Sim.NumRedirectors),
		Interval:    interval,
		Convergence: convergence,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		checker.Run(ctx)
	}()
	return checker, func() { cancel(); <-done }
}

// TestFreeRunningServes: a free-running fleet with no chaos serves load on
// its own clock — tickers advance, requests succeed, and the invariant
// checker stays silent.
func TestFreeRunningServes(t *testing.T) {
	const wall = 3 * time.Second
	cfg := freeRunConfig(t, topology.Star(4), wall)
	h := livetest.Start(t, cfg)
	awaitFloorConverged(t, h, 30*time.Second)
	checker, stopCheck := startChecker(h, 100*time.Millisecond, 2*time.Second)

	if err := h.Free.Run(context.Background(), wall); err != nil {
		t.Fatalf("free run: %v", err)
	}
	stopCheck()
	checker.CheckFailures(h.Free.Failures())

	if rep := checker.Report(); !rep.OK() {
		t.Fatalf("invariant violations on a healthy fleet:\n%s", rep)
	} else if rep.Scrapes == 0 {
		t.Fatal("checker never scraped")
	}
	if h.Free.Served() == 0 {
		t.Fatal("no requests served")
	}
	if h.Free.Failed() != 0 {
		t.Fatalf("%d failed requests on a healthy fleet", h.Free.Failed())
	}
	for i := 0; i < h.Fleet.NumNodes(); i++ {
		st := nodeStats(t, h.Fleet.URL(topology.NodeID(i)))
		if st.MeasureTicks == 0 {
			t.Errorf("node %d never ran a measurement tick", i)
		}
		if st.PlaceTicks == 0 {
			t.Errorf("node %d never ran a placement tick", i)
		}
	}
}

// TestChaosKillRestartInvariants is the headline free-running test: a
// scheduled chaos plan SIGKILLs a leaf node mid-run and restarts it, the
// fleet keeps serving on its own clocks, and the invariant checker
// reports zero violations — the floor is repaired, no object is lost,
// counters stay monotone per boot, and every failed request falls inside
// the crash window.
func TestChaosKillRestartInvariants(t *testing.T) {
	const (
		wall        = 9 * time.Second
		convergence = 3 * time.Second
		victim      = topology.NodeID(3) // Star(4) leaf; node 0 is the redirector
	)
	cfg := freeRunConfig(t, topology.Star(4), wall)
	h := livetest.Start(t, cfg)
	awaitFloorConverged(t, h, 30*time.Second)
	checker, stopCheck := startChecker(h, 100*time.Millisecond, convergence)

	// The same DSL clause the simulator takes: kill node 3 at T+2s,
	// restart it 2s later.
	plan, err := chaos.Plan("crash:3@2s+2s", h.Fleet.Config().Sim.Topo, wall, nil)
	if err != nil {
		t.Fatalf("planning chaos: %v", err)
	}
	target := chaos.NewFleetTarget(h.Fleet, h.Free.SetLatency)
	defer target.Close()
	ctl := chaos.NewController(target, plan, checker)

	bootBefore := nodeStats(t, h.Fleet.URL(victim)).BootID

	ctx, cancel := context.WithTimeout(context.Background(), wall+30*time.Second)
	defer cancel()
	chaosDone := make(chan error, 1)
	go func() { chaosDone <- ctl.Run(ctx, time.Now()) }()

	if err := h.Free.Run(ctx, wall); err != nil {
		t.Fatalf("free run: %v", err)
	}
	if err := <-chaosDone; err != nil {
		t.Fatalf("chaos controller: %v", err)
	}
	stopCheck()
	checker.CheckFailures(h.Free.Failures())

	if got := len(ctl.Applied()); got != 2 {
		t.Fatalf("chaos applied %d actions %v, want kill+restart", got, ctl.Applied())
	}
	if rep := checker.Report(); !rep.OK() {
		t.Fatalf("invariant violations:\n%s", rep)
	} else if rep.Scrapes < 10 {
		t.Fatalf("checker only scraped %d times over %v", rep.Scrapes, wall)
	}
	if h.Free.Served() == 0 {
		t.Fatal("no requests served")
	}
	// The victim came back as a fresh incarnation and is serving again.
	if h.Fleet.Killed(victim) {
		t.Fatal("victim still marked killed after its scheduled restart")
	}
	st := nodeStats(t, h.Fleet.URL(victim))
	if st.BootID == bootBefore {
		t.Fatalf("victim's boot ID %d unchanged across kill+restart", st.BootID)
	}
	if st.MeasureTicks == 0 {
		t.Fatal("restarted victim never ticked")
	}
}

// TestChaosPartitionHeals: cutting the control plane between the hub and
// a leaf (poisoned peer tables, both directions) and healing it leaves no
// lasting damage: the checker stays silent and requests keep being
// served. Partitions cut control RPCs only — the data plane (client 302s)
// is deliberately untouched.
func TestChaosPartitionHeals(t *testing.T) {
	const wall = 4 * time.Second
	cfg := freeRunConfig(t, topology.Star(4), wall)
	h := livetest.Start(t, cfg)
	awaitFloorConverged(t, h, 30*time.Second)
	checker, stopCheck := startChecker(h, 100*time.Millisecond, 2*time.Second)

	plan, err := chaos.Plan("link:0-2@1s+1500ms", h.Fleet.Config().Sim.Topo, wall, nil)
	if err != nil {
		t.Fatalf("planning chaos: %v", err)
	}
	target := chaos.NewFleetTarget(h.Fleet, h.Free.SetLatency)
	defer target.Close()
	ctl := chaos.NewController(target, plan, checker)

	ctx, cancel := context.WithTimeout(context.Background(), wall+30*time.Second)
	defer cancel()
	chaosDone := make(chan error, 1)
	go func() { chaosDone <- ctl.Run(ctx, time.Now()) }()
	if err := h.Free.Run(ctx, wall); err != nil {
		t.Fatalf("free run: %v", err)
	}
	if err := <-chaosDone; err != nil {
		t.Fatalf("chaos controller: %v", err)
	}
	stopCheck()
	checker.CheckFailures(h.Free.Failures())

	if rep := checker.Report(); !rep.OK() {
		t.Fatalf("invariant violations after partition+heal:\n%s", rep)
	}
	if h.Free.Served() == 0 {
		t.Fatal("no requests served")
	}
	// Both sides survived the partition with RPCs refused at the client;
	// at least one should have recorded unreachable-peer fast-failures if
	// any control traffic crossed the cut, and none may have crashed.
	for i := 0; i < h.Fleet.NumNodes(); i++ {
		if h.Fleet.Killed(topology.NodeID(i)) {
			t.Fatalf("node %d died during a control-plane partition", i)
		}
	}
}
