package live

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"radar/internal/routing"
	"radar/internal/topology"
)

// Fleet runs every node of one configuration in-process, each behind its
// own loopback HTTP listener on an ephemeral port — the harness the
// integration tests, the equivalence test, and radar-load's default mode
// drive. Kill closes a node's listener and in-flight connections, making
// the node indistinguishable from a crashed process to the rest of the
// fleet (connections refused), without tearing down its in-memory state.
type Fleet struct {
	cfg    Config
	routes *routing.Table
	nodes  []*Node
	urls   []string

	mu        sync.Mutex
	servers   []*http.Server
	listeners []net.Listener
	killed    []bool
}

// NewFleet builds and starts one node per topology member on
// 127.0.0.1:0 listeners.
func NewFleet(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	routes := routing.New(cfg.Sim.Topo)
	n := routes.NumNodes()
	f := &Fleet{
		cfg:       cfg,
		routes:    routes,
		nodes:     make([]*Node, n),
		urls:      make([]string, n),
		servers:   make([]*http.Server, n),
		listeners: make([]net.Listener, n),
		killed:    make([]bool, n),
	}
	// Listeners first: every node needs the full URL manifest.
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("live: listening for node %d: %w", i, err)
		}
		f.listeners[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		nd, err := NewNode(cfg, topology.NodeID(i), f.urls, routes)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes[i] = nd
		srv := &http.Server{Handler: nd.Handler()}
		f.servers[i] = srv
		go func(srv *http.Server, ln net.Listener) {
			_ = srv.Serve(ln)
		}(srv, f.listeners[i])
	}
	return f, nil
}

// NumNodes returns the fleet size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// URLs returns the node base URLs, indexed by node ID.
func (f *Fleet) URLs() []string { return append([]string(nil), f.urls...) }

// URL returns one node's base URL.
func (f *Fleet) URL(i topology.NodeID) string { return f.urls[i] }

// Node returns a fleet member for in-process inspection.
func (f *Fleet) Node(i topology.NodeID) *Node { return f.nodes[i] }

// Routes returns the shared routing table.
func (f *Fleet) Routes() *routing.Table { return f.routes }

// Config returns the normalized fleet configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Kill crashes a node: its listener closes and open connections are torn
// down, so every subsequent request to it fails at the transport. The
// node's memory (host, server, redirector) is retained — tests can still
// inspect it — but, like a crashed process, it no longer participates.
func (f *Fleet) Kill(i topology.NodeID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed[i] {
		return nil
	}
	f.killed[i] = true
	srv := f.servers[i]
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Killed reports whether a node has been killed.
func (f *Fleet) Killed(i topology.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed[i]
}

// Close tears the whole fleet down.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, srv := range f.servers {
		if srv != nil && !f.killed[i] {
			_ = srv.Close()
			f.killed[i] = true
		}
	}
	for _, ln := range f.listeners {
		if ln != nil {
			_ = ln.Close() // idempotent; srv.Close already closed started ones
		}
	}
}

// WaitHealthy polls every live node's health endpoint until it answers or
// the deadline passes.
func (f *Fleet) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, u := range f.urls {
		if f.Killed(topology.NodeID(i)) {
			continue
		}
		for {
			res, err := http.Get(u + PathHealth)
			if err == nil {
				res.Body.Close()
				if res.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("live: node %d not healthy after %v", i, timeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}
