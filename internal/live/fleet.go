package live

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"radar/internal/routing"
	"radar/internal/topology"
)

// Fleet runs every node of one configuration in-process, each behind its
// own loopback HTTP listener on an ephemeral port — the harness the
// integration tests, the equivalence test, and radar-load's default mode
// drive. Kill closes a node's listener and in-flight connections and stops
// the node's own goroutines (tickers, pending completions, in-flight
// client retries), making the node indistinguishable from a SIGKILLed
// process to the rest of the fleet: connections refused, no further
// control traffic. Restart brings a killed node back on its original
// address as a fresh incarnation booted from the seed image, the way a
// crashed process restarts from disk.
type Fleet struct {
	cfg    Config
	routes *routing.Table
	epoch  time.Time
	urls   []string

	mu        sync.Mutex
	nodes     []*Node
	servers   []*http.Server
	listeners []net.Listener
	serveDone []chan struct{}
	killed    []bool
}

// NewFleet builds and starts one node per topology member on
// 127.0.0.1:0 listeners.
func NewFleet(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	routes := routing.New(cfg.Sim.Topo)
	n := routes.NumNodes()
	f := &Fleet{
		cfg:       cfg,
		routes:    routes,
		epoch:     time.Now(),
		nodes:     make([]*Node, n),
		urls:      make([]string, n),
		servers:   make([]*http.Server, n),
		listeners: make([]net.Listener, n),
		serveDone: make([]chan struct{}, n),
		killed:    make([]bool, n),
	}
	// Listeners first: every node needs the full URL manifest.
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("live: listening for node %d: %w", i, err)
		}
		f.listeners[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		nd, err := NewNode(cfg, topology.NodeID(i), f.urls, routes)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.startNode(topology.NodeID(i), nd, f.listeners[i], false)
	}
	return f, nil
}

// startNode installs a node behind a listener and boots it. Callers either
// own f exclusively (NewFleet) or hold f.mu (Restart).
func (f *Fleet) startNode(i topology.NodeID, nd *Node, ln net.Listener, recovered bool) {
	f.nodes[i] = nd
	f.listeners[i] = ln
	srv := &http.Server{Handler: nd.Handler()}
	f.servers[i] = srv
	done := make(chan struct{})
	f.serveDone[i] = done
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	nd.Start(f.epoch, recovered)
}

// NumNodes returns the fleet size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// URLs returns the node base URLs, indexed by node ID.
func (f *Fleet) URLs() []string { return append([]string(nil), f.urls...) }

// URL returns one node's base URL.
func (f *Fleet) URL(i topology.NodeID) string { return f.urls[i] }

// Node returns a fleet member for in-process inspection.
func (f *Fleet) Node(i topology.NodeID) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[i]
}

// Routes returns the shared routing table.
func (f *Fleet) Routes() *routing.Table { return f.routes }

// Config returns the normalized fleet configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Epoch returns the wall-clock zero of the fleet's virtual time.
func (f *Fleet) Epoch() time.Time { return f.epoch }

// Kill crashes a node: its listener closes, open connections are torn
// down, and the node's goroutines (tickers, timers, client retries) are
// reaped, so every subsequent request to it fails at the transport and
// nothing of the node keeps running — the in-process equivalent of
// SIGKILL. The node's memory (host, server, redirector) is retained for
// test inspection.
func (f *Fleet) Kill(i topology.NodeID) error {
	f.mu.Lock()
	if f.killed[i] {
		f.mu.Unlock()
		return nil
	}
	f.killed[i] = true
	srv, nd, done := f.servers[i], f.nodes[i], f.serveDone[i]
	f.mu.Unlock()
	if nd != nil {
		nd.Stop()
	}
	if srv == nil {
		return nil
	}
	err := srv.Close()
	if done != nil {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("live: node %d server did not stop", i)
		}
	}
	return err
}

// Restart brings a killed node back on its original address as a fresh
// incarnation: cold state rebuilt from the configuration (the seed image a
// real process reloads from disk), a new boot ID, and — in free-running
// mode — re-registration of its held replicas with the fleet's
// redirectors before the node reports ready.
func (f *Fleet) Restart(i topology.NodeID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.killed[i] {
		return fmt.Errorf("live: restarting node %d, which is not killed", i)
	}
	addr := f.listeners[i].Addr().String()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: relistening node %d on %s: %w", i, addr, err)
	}
	nd, err := NewNode(f.cfg, i, f.urls, f.routes)
	if err != nil {
		ln.Close()
		return err
	}
	f.killed[i] = false
	f.startNode(i, nd, ln, true)
	return nil
}

// Killed reports whether a node has been killed.
func (f *Fleet) Killed(i topology.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed[i]
}

// Close tears the whole fleet down, reaping every node's goroutines.
func (f *Fleet) Close() {
	f.mu.Lock()
	var wait []chan struct{}
	for i, srv := range f.servers {
		if f.nodes[i] != nil {
			f.nodes[i].Stop()
		}
		if srv != nil && !f.killed[i] {
			_ = srv.Close()
			f.killed[i] = true
			if f.serveDone[i] != nil {
				wait = append(wait, f.serveDone[i])
			}
		}
	}
	for _, ln := range f.listeners {
		if ln != nil {
			_ = ln.Close() // idempotent; srv.Close already closed started ones
		}
	}
	f.mu.Unlock()
	for _, done := range wait {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}
}

// WaitHealthy polls every live node's health endpoint until it answers or
// the deadline passes.
func (f *Fleet) WaitHealthy(timeout time.Duration) error {
	return f.wait(PathHealth, timeout)
}

// WaitReady polls every live node's readiness endpoint — the one that
// requires the node to have booted (tickers running, recovery
// re-registration done), which is what restart coordination must gate on.
func (f *Fleet) WaitReady(timeout time.Duration) error {
	return f.wait(PathReady, timeout)
}

func (f *Fleet) wait(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{}
	defer client.CloseIdleConnections()
	for i, u := range f.urls {
		if f.Killed(topology.NodeID(i)) {
			continue
		}
		for {
			res, err := client.Get(u + path)
			if err == nil {
				res.Body.Close()
				if res.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("live: node %d not answering %s after %v", i, path, timeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}
