package live_test

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/live/livetest"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/sim"
	"radar/internal/topology"
	"radar/internal/workload"
)

// liveConfig builds a small fleet configuration over the given synthetic
// topology, mirroring the simulator tests' scale-down pattern.
func liveConfig(t *testing.T, topo *topology.Topology, objects int, rps float64, dur time.Duration) live.Config {
	t.Helper()
	u := object.Universe{Count: objects, SizeBytes: 4 << 10}
	gen, err := workload.NewHotPages(u, 0.1, 0.9, 3)
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	cfg := sim.DefaultConfig(gen, 7)
	cfg.Topo = topo
	cfg.Universe = u
	cfg.NodeRequestRPS = rps
	cfg.Duration = dur
	cfg.PlacementInterval = 30 * time.Second
	cfg.MetricsBucket = 30 * time.Second
	return live.Config{Sim: cfg}
}

// postCreate POSTs one CreateObj message and returns the response body.
func postCreate(t *testing.T, url string, msg *live.CreateObjMsg) []byte {
	t.Helper()
	res, err := http.Post(url+live.PathCreateObj, "application/json", bytes.NewReader(live.Encode(msg)))
	if err != nil {
		t.Fatalf("POST createobj: %v", err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("reading createobj reply: %v", err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("createobj status %d: %s", res.StatusCode, body)
	}
	return body
}

func nodeStats(t *testing.T, url string) live.StatsReply {
	t.Helper()
	res, err := http.Get(url + live.PathStats)
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("reading stats: %v", err)
	}
	var rep live.StatsReply
	if err := live.Decode(body, &rep); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return rep
}

// TestCreateObjIdempotent: retries and concurrent duplicates of one
// CreateObj message execute the handshake once and replay the identical
// verdict — the buildbarn-style request deduplication on the live wire.
func TestCreateObjIdempotent(t *testing.T) {
	h := livetest.Start(t, liveConfig(t, topology.Line(3), 9, 1, time.Minute))
	target := h.Fleet.URL(1)
	msg := &live.CreateObjMsg{
		MsgID: 7001, From: 0, To: 1, Method: protocol.Replicate.String(),
		Object: 0, UnitLoad: 0.5, SrcAff: 2, Now: 0,
	}

	first := postCreate(t, target, msg)
	var rep live.CreateObjReply
	if err := live.Decode(first, &rep); err != nil {
		t.Fatalf("decoding verdict: %v", err)
	}
	if rep.MsgID != msg.MsgID {
		t.Fatalf("verdict msg id %d, want %d", rep.MsgID, msg.MsgID)
	}
	if !rep.Accepted || !rep.Copied {
		t.Fatalf("idle host refused the create: %+v", rep)
	}

	// Sequential retries and concurrent duplicates all replay the verdict.
	var wg sync.WaitGroup
	replies := make([][]byte, 6)
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = postCreate(t, target, msg)
		}(i)
	}
	wg.Wait()
	for i, r := range replies {
		if !bytes.Equal(r, first) {
			t.Fatalf("duplicate %d got %s, want %s", i, r, first)
		}
	}

	stats := nodeStats(t, target)
	if stats.CreateExecutions != 1 {
		t.Fatalf("CreateExecutions = %d after 7 copies of one message, want 1", stats.CreateExecutions)
	}
}

// TestCreateObjConcurrencyLimit: distinct CreateObj messages all execute,
// but never more than the configured per-node limit at a time.
func TestCreateObjConcurrencyLimit(t *testing.T) {
	const limit, msgs = 2, 12
	cfg := liveConfig(t, topology.Line(3), 24, 1, time.Minute)
	cfg.MaxInflightCreates = limit
	h := livetest.Start(t, cfg)
	target := h.Fleet.URL(2)

	var wg sync.WaitGroup
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := &live.CreateObjMsg{
				MsgID: uint64(9000 + i), From: 0, To: 2, Method: protocol.Replicate.String(),
				Object: int64(i), UnitLoad: 0.01, SrcAff: 1, Now: 0,
			}
			body := postCreate(t, target, msg)
			var rep live.CreateObjReply
			if err := live.Decode(body, &rep); err != nil {
				t.Errorf("decoding verdict %d: %v", i, err)
				return
			}
			if rep.MsgID != msg.MsgID {
				t.Errorf("verdict %d answered msg id %d", i, rep.MsgID)
			}
		}(i)
	}
	wg.Wait()

	stats := nodeStats(t, target)
	if stats.CreateExecutions != msgs {
		t.Fatalf("CreateExecutions = %d, want %d", stats.CreateExecutions, msgs)
	}
	if stats.CreatePeakConcurrency > limit {
		t.Fatalf("CreatePeakConcurrency = %d, limit %d", stats.CreatePeakConcurrency, limit)
	}
}

// TestMalformedRPCAnswers400: a malformed control-plane body is rejected
// with the typed wire error, not a hang or a panic.
func TestMalformedRPCAnswers400(t *testing.T) {
	h := livetest.Start(t, liveConfig(t, topology.Line(2), 4, 1, time.Minute))
	for _, body := range []string{`{"msg_id":`, `{"msg_id":0}`, `{"msg_id":1,"method":"STEAL","src_aff":1}`} {
		res, err := http.Post(h.Fleet.URL(0)+live.PathCreateObj, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		reason, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, res.StatusCode)
		}
		if len(reason) == 0 {
			t.Fatalf("body %q: empty rejection reason", body)
		}
	}
	if got := nodeStats(t, h.Fleet.URL(0)).CreateExecutions; got != 0 {
		t.Fatalf("malformed bodies executed %d creates", got)
	}
}
