module radar

go 1.22
