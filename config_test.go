package radar_test

import (
	"errors"
	"testing"
	"time"

	"radar"
)

// TestGroupedConfigPromotion: the embedded sub-structs promote their
// fields, so grouped and flat assignment address the same storage and
// produce identical configurations.
func TestGroupedConfigPromotion(t *testing.T) {
	grouped := radar.DefaultConfig(radar.Zipf)
	grouped.Placement.Policy = radar.PolicyClosest
	grouped.Placement.AvailabilityWeight = 0.5
	grouped.Faults.FaultSchedule = "crash:9@3m+5m"
	grouped.Faults.ReplicaFloor = 2
	grouped.Ctrl.CtrlRetries = 4
	grouped.Ctrl.CtrlTimeout = 2 * time.Second
	grouped.Storage.Store = "cache(mem:64,disk:5ms)"
	grouped.Live.LiveMaxInflightCreates = 8

	flat := radar.DefaultConfig(radar.Zipf)
	flat.Policy = radar.PolicyClosest
	flat.AvailabilityWeight = 0.5
	flat.FaultSchedule = "crash:9@3m+5m"
	flat.ReplicaFloor = 2
	flat.CtrlRetries = 4
	flat.CtrlTimeout = 2 * time.Second
	flat.Store = "cache(mem:64,disk:5ms)"
	flat.LiveMaxInflightCreates = 8

	if grouped != flat {
		t.Errorf("grouped and flat assignment diverge:\n grouped: %+v\n flat: %+v", grouped, flat)
	}
	if err := grouped.Validate(); err != nil {
		t.Errorf("grouped config fails validation: %v", err)
	}
}

// TestGroupValidateIsolation: each embedded group validates on its own,
// without needing the rest of the configuration to be well-formed.
func TestGroupValidateIsolation(t *testing.T) {
	if err := (radar.Placement{Policy: radar.PolicyPaper, AvailabilityWeight: 0.5}).Validate(); err != nil {
		t.Errorf("valid placement group rejected: %v", err)
	}
	if err := (radar.Placement{AvailabilityWeight: 1.5}).Validate(); !errors.Is(err, radar.ErrBadAvailabilityWeight) {
		t.Errorf("placement group error = %v, want ErrBadAvailabilityWeight", err)
	}
	if err := (radar.Faults{ReplicaFloor: -1}).Validate(); !errors.Is(err, radar.ErrBadReplicaFloor) {
		t.Errorf("faults group error = %v, want ErrBadReplicaFloor", err)
	}
	if err := (radar.Faults{FaultSchedule: "nope"}).Validate(); !errors.Is(err, radar.ErrBadFaultSchedule) {
		t.Errorf("faults group error = %v, want ErrBadFaultSchedule", err)
	}
	if err := (radar.Ctrl{CtrlRetries: -1}).Validate(); !errors.Is(err, radar.ErrBadCtrlRetries) {
		t.Errorf("ctrl group error = %v, want ErrBadCtrlRetries", err)
	}
	if err := (radar.Ctrl{CtrlTimeout: -time.Second}).Validate(); !errors.Is(err, radar.ErrBadCtrlTimeout) {
		t.Errorf("ctrl group error = %v, want ErrBadCtrlTimeout", err)
	}
	if err := (radar.Storage{Store: "cache(disk,mem)"}).Validate(); !errors.Is(err, radar.ErrBadStoreSpec) {
		t.Errorf("storage group error = %v, want ErrBadStoreSpec", err)
	}
	if err := (radar.Storage{}).Validate(); err != nil {
		t.Errorf("zero storage group rejected: %v", err)
	}
}

// TestConfigErrorClassAndDetail: every out-of-range value is a
// *ConfigError wrapping ErrBadConfig AND its legacy sentinel, with the
// structured field detail intact.
func TestConfigErrorClassAndDetail(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*radar.Config)
		legacy error
		field  string
	}{
		{"replica floor", func(c *radar.Config) { c.Faults.ReplicaFloor = -1 }, radar.ErrBadReplicaFloor, "Faults.ReplicaFloor"},
		{"availability weight", func(c *radar.Config) { c.Placement.AvailabilityWeight = -0.1 }, radar.ErrBadAvailabilityWeight, "Placement.AvailabilityWeight"},
		{"ctrl retries", func(c *radar.Config) { c.Ctrl.CtrlRetries = -2 }, radar.ErrBadCtrlRetries, "Ctrl.CtrlRetries"},
		{"ctrl timeout", func(c *radar.Config) { c.Ctrl.CtrlTimeout = -time.Second }, radar.ErrBadCtrlTimeout, "Ctrl.CtrlTimeout"},
		{"store spec", func(c *radar.Config) { c.Storage.Store = "mem(" }, radar.ErrBadStoreSpec, "Storage.Store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := radar.DefaultConfig(radar.Uniform)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("bad config validated")
			}
			if !errors.Is(err, radar.ErrBadConfig) {
				t.Errorf("error %v does not match ErrBadConfig", err)
			}
			if !errors.Is(err, tc.legacy) {
				t.Errorf("error %v does not match legacy sentinel %v", err, tc.legacy)
			}
			var ce *radar.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestLegacySentinelsWrapErrBadConfig: the per-field sentinels themselves
// are members of the ErrBadConfig class.
func TestLegacySentinelsWrapErrBadConfig(t *testing.T) {
	for _, sentinel := range []error{
		radar.ErrBadReplicaFloor,
		radar.ErrBadAvailabilityWeight,
		radar.ErrBadCtrlRetries,
		radar.ErrBadCtrlTimeout,
		radar.ErrBadStoreSpec,
	} {
		if !errors.Is(sentinel, radar.ErrBadConfig) {
			t.Errorf("sentinel %v does not wrap ErrBadConfig", sentinel)
		}
	}
}

// TestRunBadStoreSpec: a malformed store term is caught at Run time with
// the full sentinel chain.
func TestRunBadStoreSpec(t *testing.T) {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 100
	cfg.Duration = time.Minute
	cfg.Storage.Store = "mirror(mem)"
	if _, err := radar.Run(cfg); !errors.Is(err, radar.ErrBadConfig) || !errors.Is(err, radar.ErrBadStoreSpec) {
		t.Errorf("Run error = %v, want ErrBadConfig and ErrBadStoreSpec", err)
	}
}

// TestRunCacheOverDisk: a cache-over-disk run through the facade reports
// per-layer stats, and the default store keeps them disabled.
func TestRunCacheOverDisk(t *testing.T) {
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute
	cfg.Storage.Store = "cache(mem:32,disk:2ms)"
	res, err := radar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if !s.StoreEnabled {
		t.Error("StoreEnabled = false with a non-default stack")
	}
	if s.StoreSpec != "cache(mem:32,disk:2ms)" {
		t.Errorf("StoreSpec = %q", s.StoreSpec)
	}
	if s.StoreHits+s.StoreMisses == 0 {
		t.Error("cache recorded no activity")
	}
	if len(res.StoreLayers) != 3 {
		t.Fatalf("got %d store layers, want 3 (cache, mem, disk)", len(res.StoreLayers))
	}
	if res.StoreLayers[0].Label != "cache" || res.StoreLayers[1].Label != "mem:32" || res.StoreLayers[2].Label != "disk:2ms" {
		t.Errorf("layer labels = %q, %q, %q", res.StoreLayers[0].Label, res.StoreLayers[1].Label, res.StoreLayers[2].Label)
	}
	if res.StoreLayers[2].CostNanos == 0 {
		t.Error("disk tier accrued no serve cost")
	}

	plain := radar.DefaultConfig(radar.Zipf)
	plain.Objects = 500
	plain.Duration = 2 * time.Minute
	resPlain, err := radar.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Summary.StoreEnabled || len(resPlain.StoreLayers) != 0 {
		t.Error("default store reports storage stats")
	}
}
