// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the DESIGN.md ablations. Each Benchmark corresponds to
// one published artifact; run them all with
//
//	go test -bench=. -benchmem
//
// The underlying simulation suites run at reduced ("quick") scale so the
// whole harness finishes in minutes; cmd/radar-experiments regenerates the
// artifacts at full paper scale. Suites and ablations are executed once
// and cached; iterations then measure artifact extraction. Key reproduced
// values are attached as custom benchmark metrics and the rendered tables
// are logged with -v.
package radar_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"radar"
	"radar/internal/experiments"
	"radar/internal/report"
)

var benchOpts = experiments.Options{Seed: 1, Quick: true}

var (
	lowOnce   sync.Once
	lowSuite  *experiments.Suite
	lowErr    error
	highOnce  sync.Once
	highSuite *experiments.Suite
	highErr   error
)

func suite(b *testing.B, highLoad bool) *experiments.Suite {
	b.Helper()
	if highLoad {
		highOnce.Do(func() { highSuite, highErr = experiments.RunSuite(benchOpts, true) })
		if highErr != nil {
			b.Fatal(highErr)
		}
		return highSuite
	}
	lowOnce.Do(func() { lowSuite, lowErr = experiments.RunSuite(benchOpts, false) })
	if lowErr != nil {
		b.Fatal(lowErr)
	}
	return lowSuite
}

func logTable(b *testing.B, t *report.Table) {
	b.Helper()
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

// BenchmarkTable1Defaults validates that the library defaults reproduce
// the paper's Table 1 simulation parameters.
func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := radar.DefaultConfig(radar.Zipf)
		if cfg.Objects != 10000 || cfg.ObjectSizeBytes != 12<<10 {
			b.Fatalf("defaults diverge from Table 1: %+v", cfg)
		}
	}
	b.Log("Table 1: 10000 objects x 12KB, placement 100s, 40 req/s/node, capacity 200 req/s, " +
		"10ms/hop, 350KB/s links, hw/lw 90/80 (50/40 high load), u=0.03, m=0.18")
}

// BenchmarkFigure6 regenerates the bandwidth/latency comparison for the
// four workloads (dynamic vs static).
func BenchmarkFigure6(b *testing.B) {
	s := suite(b, false)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Figure6()
	}
	b.StopTimer()
	logTable(b, tbl)
	for _, name := range experiments.WorkloadNames {
		b.ReportMetric(s.Runs[name].BandwidthReduction(), "bwred%"+shortName(name))
	}
}

// BenchmarkFigure7 regenerates the protocol overhead analysis.
func BenchmarkFigure7(b *testing.B) {
	s := suite(b, false)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Figure7()
	}
	b.StopTimer()
	logTable(b, tbl)
	worst := 0.0
	for _, name := range experiments.WorkloadNames {
		if o := s.Runs[name].Dynamic.OverheadPercent; o > worst {
			worst = o
		}
	}
	b.ReportMetric(worst, "worst-overhead-%")
	if worst > 2.5 {
		b.Fatalf("overhead %.2f%% exceeds the paper's 2.5%% ceiling", worst)
	}
}

// BenchmarkFigure8a regenerates the maximum-load analysis.
func BenchmarkFigure8a(b *testing.B) {
	s := suite(b, false)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Figure8a()
	}
	b.StopTimer()
	logTable(b, tbl)
	b.ReportMetric(s.Runs["hot-sites"].Dynamic.MaxLoadSettled, "hot-sites-settled-load")
}

// BenchmarkFigure8b regenerates the load-estimate sandwich analysis for
// the tracked hot site.
func BenchmarkFigure8b(b *testing.B) {
	s := suite(b, false)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Figure8b()
	}
	b.StopTimer()
	logTable(b, tbl)
	r := s.Runs["hot-sites"].Dynamic
	if len(r.HostLoad) > 0 {
		b.ReportMetric(100*float64(r.SandwichViolations)/float64(len(r.HostLoad)), "sandwich-violation-%")
	}
}

// BenchmarkTable2 regenerates adjustment times and replica counts.
func BenchmarkTable2(b *testing.B) {
	s := suite(b, false)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Table2()
	}
	b.StopTimer()
	logTable(b, tbl)
	for _, name := range experiments.WorkloadNames {
		b.ReportMetric(s.Runs[name].Dynamic.AvgReplicas, "replicas-"+shortName(name))
	}
}

// BenchmarkFigure9 regenerates the high-load (hw=50/lw=40) comparison.
func BenchmarkFigure9(b *testing.B) {
	s := suite(b, true)
	b.ResetTimer()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl = s.Figure6() // same artifact shape at high-load watermarks
	}
	b.StopTimer()
	logTable(b, tbl)
	low := suite(b, false)
	// Figure 9 claim: performance gains diminish under high load.
	for _, name := range []string{"regional", "zipf"} {
		delta := low.Runs[name].BandwidthReduction() - s.Runs[name].BandwidthReduction()
		b.ReportMetric(delta, "reduction-loss%"+shortName(name))
	}
}

// Ablation benches: each executes its sweep once (cached across
// iterations) and reports the rendered table.

func ablationBench(b *testing.B, once *sync.Once, cache **report.Table, errp *error,
	run func(experiments.Options) (*report.Table, error)) {
	b.Helper()
	once.Do(func() { *cache, *errp = run(benchOpts) })
	if *errp != nil {
		b.Fatal(*errp)
	}
	b.ResetTimer()
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		if err := (*cache).Render(&out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + out.String())
}

var (
	a1Once, a2Once, a3Once, a4Once, a5Once, a6Once, a7Once, a8Once sync.Once
	a1Tbl, a2Tbl, a3Tbl, a4Tbl, a5Tbl, a6Tbl, a7Tbl, a8Tbl         *report.Table
	a1Err, a2Err, a3Err, a4Err, a5Err, a6Err, a7Err, a8Err         error
)

// BenchmarkAblationDistribution compares the Fig. 2 distributor against
// round-robin and closest-replica (§3).
func BenchmarkAblationDistribution(b *testing.B) {
	ablationBench(b, &a1Once, &a1Tbl, &a1Err, experiments.AblationDistribution)
}

// BenchmarkAblationFullReplication demonstrates that needless replicas
// are harmful (§4).
func BenchmarkAblationFullReplication(b *testing.B) {
	ablationBench(b, &a2Once, &a2Tbl, &a2Err, experiments.AblationFullReplication)
}

// BenchmarkAblationConstant sweeps the distribution constant (§6.1).
func BenchmarkAblationConstant(b *testing.B) {
	ablationBench(b, &a3Once, &a3Tbl, &a3Err, experiments.AblationConstant)
}

// BenchmarkAblationThresholds sweeps u and m/u (§6.1).
func BenchmarkAblationThresholds(b *testing.B) {
	ablationBench(b, &a4Once, &a4Tbl, &a4Err, experiments.AblationThresholds)
}

// BenchmarkAblationBulkOffload compares en-masse offloading against
// one-object-per-round (§1.2).
func BenchmarkAblationBulkOffload(b *testing.B) {
	ablationBench(b, &a5Once, &a5Tbl, &a5Err, experiments.AblationBulkOffload)
}

// BenchmarkAblationNeighborOnly compares the protocol against the
// ADR/WebWave-style neighbor-only baseline (§1.1).
func BenchmarkAblationNeighborOnly(b *testing.B) {
	ablationBench(b, &a6Once, &a6Tbl, &a6Err, experiments.AblationNeighborOnly)
}

// BenchmarkAblationOracle compares the protocol against the offline
// greedy oracle placement (§1.1 future work).
func BenchmarkAblationOracle(b *testing.B) {
	ablationBench(b, &a7Once, &a7Tbl, &a7Err, experiments.AblationOracle)
}

// BenchmarkAblationRedirectors sweeps the redirector count (§6.1 future
// work).
func BenchmarkAblationRedirectors(b *testing.B) {
	ablationBench(b, &a8Once, &a8Tbl, &a8Err, experiments.AblationRedirectors)
}

// BenchmarkEndToEndQuickRun measures a complete scaled-down simulation
// (build, run, collect) per iteration — the library's end-to-end cost.
func BenchmarkEndToEndQuickRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := radar.DefaultConfig(radar.Zipf)
		cfg.Objects = 500
		cfg.Duration = 2 * time.Minute
		cfg.Seed = int64(i + 1)
		res, err := radar.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.TotalServed == 0 {
			b.Fatal("no requests served")
		}
	}
}

// benchRunSeeds measures a four-seed batch through the experiments
// engine at the given parallelism. Per-seed results are bit-identical at
// every parallelism level, so on a multi-core machine the parallel
// variant shows the engine's wall-clock win directly against the
// sequential one.
func benchRunSeeds(b *testing.B, parallelism int) {
	b.Helper()
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute
	seeds := []int64{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := radar.RunSeeds(cfg, seeds, parallelism)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Summary.TotalServed == 0 {
				b.Fatal("no requests served")
			}
		}
	}
}

// BenchmarkEngineMultiSeedSequential is the engine pinned to one worker.
func BenchmarkEngineMultiSeedSequential(b *testing.B) { benchRunSeeds(b, 1) }

// BenchmarkEngineMultiSeedParallel fans the batch out across GOMAXPROCS
// workers.
func BenchmarkEngineMultiSeedParallel(b *testing.B) { benchRunSeeds(b, 0) }

func shortName(workload string) string {
	switch workload {
	case "hot-sites":
		return "HS"
	case "hot-pages":
		return "HP"
	case "zipf":
		return "Z"
	case "regional":
		return "R"
	default:
		return strconv.Itoa(len(workload))
	}
}
