// Package radar is a from-scratch reproduction of "A Dynamic Object
// Replication and Migration Protocol for an Internet Hosting Service"
// (M. Rabinovich, I. Rabinovich, R. Rajaraman, A. Aggarwal, ICDCS 1999) —
// the protocol suite behind AT&T's RaDaR hosting platform.
//
// The package exposes a small facade over the full system: a discrete-event
// simulation of an Internet hosting service on a reconstructed 53-node
// UUNET backbone, running the paper's request distribution algorithm
// (Fig. 2), autonomous replica placement (Fig. 3), replica creation
// handshake (Fig. 4) and host offloading (Fig. 5), under the paper's four
// synthetic workloads. Run executes one configured simulation and returns
// the series and aggregates behind the paper's tables and figures.
//
// The implementation lives under internal/: the protocol state machines
// (internal/protocol), the theorem bounds (Theorems 1-5), the backbone
// topology and routing substrate, the network and server models, workload
// generators, the consistency layer of §5, and the experiment harness that
// regenerates every published table and figure (cmd/radar-experiments).
package radar

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"radar/internal/consistency"
	"radar/internal/experiments"
	"radar/internal/fault"
	"radar/internal/metrics"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/report"
	"radar/internal/sim"
	"radar/internal/substrate"
	"radar/internal/topology"
	"radar/internal/trace"
	"radar/internal/workload"
)

// Workload names one of the paper's synthetic demand shapes (§6.1).
type Workload string

// The paper's workloads plus a uniform control.
const (
	// Zipf draws pages by popularity rank under Zipf's law (Reeds
	// closed-form approximation).
	Zipf Workload = "zipf"
	// HotSites concentrates 90% of demand on pages initially homed at
	// ~10% of the sites: the hot-spot removal stress test.
	HotSites Workload = "hot-sites"
	// HotPages makes 10% of pages uniformly popular (90% of demand),
	// spread across all sites.
	HotPages Workload = "hot-pages"
	// Regional gives each of the four backbone regions a preferred 1%
	// slice of the namespace drawing 90% of its demand.
	Regional Workload = "regional"
	// Uniform requests every object equally from everywhere.
	Uniform Workload = "uniform"
)

// Policy names a request distribution algorithm.
type Policy string

// Request distribution policies.
const (
	// PolicyPaper is the paper's Fig. 2 algorithm: closest replica unless
	// its unit request count exceeds twice the minimum.
	PolicyPaper Policy = "paper"
	// PolicyRoundRobin rotates over replicas (a §3 strawman).
	PolicyRoundRobin Policy = "round-robin"
	// PolicyClosest always uses the closest replica (a §3 strawman).
	PolicyClosest Policy = "closest"
)

// Consistency selects the §5 replica consistency regime.
type Consistency string

// Consistency regimes.
const (
	// ConsistencyNone models an all-static object population: every
	// object may replicate freely (the paper's evaluation setting).
	ConsistencyNone Consistency = "none"
	// ConsistencyMixed assigns the §5 category mix (85% static, 10%
	// commuting, 5% non-commuting with migrate-only placement).
	ConsistencyMixed Consistency = "mixed"
)

// Sentinel errors returned by the facade. Callers match them with
// errors.Is; the returned errors wrap these with the offending value.
var (
	// ErrUnknownWorkload reports a Config.Workload (or SwitchTo) naming
	// none of the package's workloads.
	ErrUnknownWorkload = errors.New("radar: unknown workload")
	// ErrUnknownPolicy reports a Config.Policy naming none of the request
	// distribution policies.
	ErrUnknownPolicy = errors.New("radar: unknown policy")
	// ErrUnknownConsistency reports a Config.Consistency naming none of
	// the §5 consistency regimes.
	ErrUnknownConsistency = errors.New("radar: unknown consistency regime")
	// ErrTraceWriterShared reports a RunSeeds call that would share one
	// TraceWriter across concurrent runs, interleaving their streams.
	ErrTraceWriterShared = errors.New("radar: trace writer cannot be shared across concurrent runs")
	// ErrNoSeeds reports a RunSeeds call with an empty seed list.
	ErrNoSeeds = errors.New("radar: no seeds")
	// ErrBadFaultSchedule reports a Config.FaultSchedule that does not
	// parse or names unknown nodes.
	ErrBadFaultSchedule = errors.New("radar: bad fault schedule")
	// ErrBadReplicaFloor reports a negative Config.ReplicaFloor.
	ErrBadReplicaFloor = errors.New("radar: bad replica floor")
	// ErrBadAvailabilityWeight reports a Config.AvailabilityWeight outside
	// [0, 1].
	ErrBadAvailabilityWeight = errors.New("radar: bad availability weight")
	// ErrBadCtrlRetries reports a negative Config.CtrlRetries.
	ErrBadCtrlRetries = errors.New("radar: bad control-plane retry budget")
	// ErrBadCtrlTimeout reports a negative Config.CtrlTimeout.
	ErrBadCtrlTimeout = errors.New("radar: bad control-plane timeout")
)

// Config configures one simulation run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Workload selects the demand shape.
	Workload Workload
	// Objects is the hosted object count (Table 1: 10,000).
	Objects int
	// ObjectSizeBytes is the uniform object size (Table 1: 12 KB).
	ObjectSizeBytes int
	// Duration is the simulated time span.
	Duration time.Duration
	// HighLoad selects the Figure 9 watermarks (50/40) instead of
	// Table 1's (90/80).
	HighLoad bool
	// Static disables dynamic placement (the no-replication baseline).
	Static bool
	// Policy selects the request distribution algorithm.
	Policy Policy
	// Consistency selects the §5 object category regime.
	Consistency Consistency
	// NumRedirectors hash-partitions the URL namespace (default 1).
	NumRedirectors int
	// PoissonArrivals switches gateways from the paper's constant
	// request spacing to Poisson arrivals.
	PoissonArrivals bool
	// LinkContention serializes transfers on each directed link instead
	// of the paper's fixed per-hop transmission cost.
	LinkContention bool
	// SwitchTo, when non-empty, swaps the demand to this workload at
	// SwitchAt — for responsiveness studies of demand-pattern changes.
	SwitchTo Workload
	// SwitchAt is the virtual time of the workload switch.
	SwitchAt time.Duration
	// TraceWriter, when non-nil, receives a JSONL stream of every
	// placement protocol event (migrations, replications, drops,
	// refusals) for offline analysis.
	TraceWriter io.Writer
	// FaultSchedule, when non-empty, enables deterministic fault
	// injection. Semicolon-separated clauses: "crash:NODE@START[+DOWNTIME]"
	// crashes a host (omitting the downtime makes it permanent),
	// "link:A-B@START[+DOWNTIME]" cuts a backbone link, and
	// "mtbf:DUR; mttr:DUR" (plus "linkmtbf"/"linkmttr") adds stochastic
	// exponential failure/repair cycles drawn from the run's seed.
	// Durations use Go syntax ("3m", "90s"). Faults are bit-reproducible:
	// equal seeds give identical fault timelines, and an empty schedule
	// leaves the run byte-identical to earlier releases.
	FaultSchedule string
	// ReplicaFloor, when > 1, makes the system keep at least that many
	// replicas per object: the redirector refuses drops below the floor
	// and hosts re-replicate thinned objects during placement runs (repair
	// replications, reported separately). Zero or one keeps the paper's
	// behavior: replicas exist only where demand warrants them.
	ReplicaFloor int
	// AvailabilityWeight w in [0, 1] arms the availability-aware placement
	// objective: replicate/migrate candidates are ordered by a blend of
	// the paper's farthest-first distance rule (weight 1-w) and a
	// failure-domain term (weight w) favoring new copies placed far from
	// the object's existing replicas, floor-threatening migrations are
	// demoted behind safe candidates, and replica-floor repair becomes
	// refusal-aware with its accept watermark relaxed from lw toward hw by
	// w. Zero (the default) keeps the run byte-identical to the paper's
	// protocol.
	AvailabilityWeight float64
	// CtrlRetries overrides the unreliable control plane's RPC retry
	// budget (attempts = 1 + retries); CtrlTimeout overrides its
	// per-attempt timeout. Both only matter when FaultSchedule carries
	// message-fault clauses (drop/dup/cdelay); zero keeps the defaults
	// (3 retries, 1s).
	CtrlRetries int
	CtrlTimeout time.Duration
}

// DefaultConfig returns the paper's Table 1 configuration under the given
// workload.
func DefaultConfig(w Workload) Config {
	return Config{
		Seed:            1,
		Workload:        w,
		Objects:         10000,
		ObjectSizeBytes: 12 << 10,
		Duration:        40 * time.Minute,
		Policy:          PolicyPaper,
		Consistency:     ConsistencyNone,
		NumRedirectors:  1,
	}
}

// Validate reports whether the configuration names a known workload,
// policy and consistency regime and carries usable simulation parameters.
// Run and RunSeeds validate internally; calling Validate first lets a
// caller separate configuration errors from execution errors. All
// returned errors wrap the package's sentinel errors (ErrUnknownWorkload
// and siblings) or the substrate's validation errors, so errors.Is works.
func (c Config) Validate() error {
	if !knownWorkload(c.Workload) {
		return fmt.Errorf("%w: %q", ErrUnknownWorkload, c.Workload)
	}
	if c.SwitchTo != "" && !knownWorkload(c.SwitchTo) {
		return fmt.Errorf("%w: switch target %q", ErrUnknownWorkload, c.SwitchTo)
	}
	switch c.Policy {
	case PolicyPaper, PolicyRoundRobin, PolicyClosest, "":
	default:
		return fmt.Errorf("%w: %q", ErrUnknownPolicy, c.Policy)
	}
	switch c.Consistency {
	case ConsistencyNone, ConsistencyMixed, "":
	default:
		return fmt.Errorf("%w: %q", ErrUnknownConsistency, c.Consistency)
	}
	u := object.Universe{Count: c.Objects, SizeBytes: c.ObjectSizeBytes}
	if err := u.Validate(); err != nil {
		return err
	}
	if c.Duration < 0 {
		return fmt.Errorf("radar: negative duration %v", c.Duration)
	}
	if c.NumRedirectors < 0 {
		return fmt.Errorf("radar: negative redirector count %d", c.NumRedirectors)
	}
	if c.SwitchAt < 0 {
		return fmt.Errorf("radar: negative switch time %v", c.SwitchAt)
	}
	if c.ReplicaFloor < 0 {
		return fmt.Errorf("%w: %d is negative", ErrBadReplicaFloor, c.ReplicaFloor)
	}
	if c.AvailabilityWeight < 0 || c.AvailabilityWeight > 1 || c.AvailabilityWeight != c.AvailabilityWeight {
		return fmt.Errorf("%w: %v outside [0, 1]", ErrBadAvailabilityWeight, c.AvailabilityWeight)
	}
	if c.CtrlRetries < 0 {
		return fmt.Errorf("%w: %d is negative", ErrBadCtrlRetries, c.CtrlRetries)
	}
	if c.CtrlTimeout < 0 {
		return fmt.Errorf("%w: %v is negative", ErrBadCtrlTimeout, c.CtrlTimeout)
	}
	if c.FaultSchedule != "" {
		spec, err := fault.ParseSchedule(c.FaultSchedule)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
		if err := spec.Validate(substrate.UUNET().Topo.NumNodes()); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
	}
	return nil
}

// knownWorkload reports whether w names one of the package's workloads.
func knownWorkload(w Workload) bool {
	switch w {
	case Zipf, HotSites, HotPages, Regional, Uniform:
		return true
	}
	return false
}

// Point is one sample of a reported time series.
type Point struct {
	// T is the bucket start time.
	T time.Duration
	// V is the bucket value.
	V float64
}

// LoadSample is one Figure 8b sample: a host's measured load between its
// lower and upper protocol estimates.
type LoadSample struct {
	T      time.Duration
	Actual float64
	Lower  float64
	Upper  float64
}

// Summary carries a run's headline numbers.
type Summary struct {
	// BandwidthInitial/Equilibrium are backbone traffic levels in
	// byte×hops per second at the start and end of the run;
	// BandwidthReductionPct compares them (Figure 6).
	BandwidthInitial      float64
	BandwidthEquilibrium  float64
	BandwidthReductionPct float64
	// Latency aggregates, in seconds (Figure 6).
	LatencyInitial      float64
	LatencyEquilibrium  float64
	LatencyReductionPct float64
	// OverheadPercent is protocol traffic as a share of total (Figure 7).
	OverheadPercent float64
	// MaxLoadPeak/Settled track the hottest server (Figure 8a).
	MaxLoadPeak    float64
	MaxLoadSettled float64
	// AdjustmentTime is Table 2's responsiveness metric; Adjusted is
	// false when the run never settled.
	AdjustmentTime time.Duration
	Adjusted       bool
	// AvgReplicas is the final average number of replicas per object
	// (Table 2).
	AvgReplicas float64
	// Requests served and abandoned.
	TotalServed      int64
	TimedOutRequests int64
	// Placement activity.
	GeoMigrations    int64
	GeoReplications  int64
	LoadMigrations   int64
	LoadReplications int64
	Drops            int64
	Refusals         int64
	// Availability metrics, all zero unless fault injection was
	// configured (Config.FaultSchedule).
	HostFailures   int64
	HostRecoveries int64
	LinkFailures   int64
	LinkRecoveries int64
	// FailedRequests counts requests lost to faults: crashed host,
	// severed path, or no reachable replica.
	FailedRequests int64
	// Outages counts windows during which an object had zero live
	// replicas; UnavailableObjectSeconds integrates their duration.
	Outages                  int64
	UnavailableObjectSeconds float64
	// BelowFloorObjectSeconds integrates time objects spent below
	// Config.ReplicaFloor.
	BelowFloorObjectSeconds float64
	// RepairReplications and RepairByteHops measure the re-replication
	// work spent restoring the replica floor.
	RepairReplications int64
	RepairByteHops     int64
	// Unreliable control plane metrics, all zero unless the fault schedule
	// carried message-fault clauses (drop/dup/cdelay). CtrlEnabled records
	// whether the plane was armed.
	CtrlEnabled bool
	// CtrlRPCAttempts/Retries/Timeouts/Lost count control RPC activity;
	// CtrlNotifiesLost counts one-way notifications that never arrived.
	CtrlRPCAttempts  int64
	CtrlRPCRetries   int64
	CtrlRPCTimeouts  int64
	CtrlRPCLost      int64
	CtrlNotifiesLost int64
	// DeferredMoves counts placement moves pushed to a later placement
	// interval after a lost handshake.
	DeferredMoves int64
	// OrphansHealed counts replicas re-registered by anti-entropy
	// reconciliation; ReconcileRuns/ReconcileByteHops measure the
	// reconciliation passes and their digest traffic.
	OrphansHealed     int64
	ReconcileRuns     int64
	ReconcileByteHops int64
}

// Result is everything one run produces.
type Result struct {
	Summary Summary
	// Per-bucket series behind Figures 6, 7, 8a and 9.
	Bandwidth   []Point
	Latency     []Point
	LatencyP99  []Point
	OverheadPct []Point
	MaxLoad     []Point
	// HostLoad is the Figure 8b trace for the tracked host.
	HostLoad []LoadSample

	raw *sim.Results
}

// Run executes one simulation and returns its results. It is
// RunContext with a background context.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation under ctx and returns its results.
// The simulation engine polls ctx every few thousand events, so canceling
// a long run returns promptly (microseconds of simulation work, not
// virtual-time minutes) with ctx.Err(). A run that completes without
// cancellation is bit-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	simCfg, err := buildSimConfig(cfg)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(*simCfg)
	if err != nil {
		return nil, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.InvariantsError != nil {
		return nil, fmt.Errorf("radar: post-run invariant check failed: %w", res.InvariantsError)
	}
	return convert(res), nil
}

// RunSeeds executes cfg once per seed, up to parallelism simulations
// concurrently (<= 0 selects GOMAXPROCS), and returns one Result per
// seed in seed order. It is RunSeedsContext with a background context.
func RunSeeds(cfg Config, seeds []int64, parallelism int) ([]*Result, error) {
	return RunSeedsContext(context.Background(), cfg, seeds, parallelism)
}

// RunSeedsContext is RunSeeds with cancellation: canceling ctx abandons
// queued runs, interrupts in-flight ones promptly, and returns ctx's
// error. Each run gets its own independently built generators and
// consistency state, so runs are race-free and each Result is
// bit-identical to Run with that seed. An empty seed list returns
// ErrNoSeeds; a TraceWriter with more than one seed returns
// ErrTraceWriterShared, because concurrent runs would interleave their
// event streams.
func RunSeedsContext(ctx context.Context, cfg Config, seeds []int64, parallelism int) ([]*Result, error) {
	if len(seeds) == 0 {
		return nil, ErrNoSeeds
	}
	if cfg.TraceWriter != nil && len(seeds) > 1 {
		return nil, fmt.Errorf("%w: %d seeds", ErrTraceWriterShared, len(seeds))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]experiments.Job, len(seeds))
	for i, seed := range seeds {
		seedCfg := cfg
		seedCfg.Seed = seed
		simCfg, err := buildSimConfig(seedCfg)
		if err != nil {
			return nil, fmt.Errorf("radar: seed %d: %w", seed, err)
		}
		jobs[i] = experiments.Job{Label: fmt.Sprintf("seed/%d", seed), Config: *simCfg}
	}
	eng := experiments.Engine{Parallelism: parallelism, FailFast: true}
	results, err := eng.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(results))
	for i, r := range results {
		out[i] = convert(r.Results)
	}
	return out, nil
}

func buildSimConfig(cfg Config) (*sim.Config, error) {
	topo := substrate.UUNET().Topo
	u := object.Universe{Count: cfg.Objects, SizeBytes: cfg.ObjectSizeBytes}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	gen, err := buildWorkload(cfg.Workload, u, topo, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.DefaultConfig(gen, cfg.Seed)
	simCfg.Topo = topo
	simCfg.Universe = u
	if cfg.Duration > 0 {
		simCfg.Duration = cfg.Duration
	}
	if cfg.HighLoad {
		simCfg.Protocol = protocol.HighLoadParams()
	}
	simCfg.DynamicPlacement = !cfg.Static
	switch cfg.Policy {
	case PolicyPaper, "":
		simCfg.Policy = protocol.PolicyPaper
	case PolicyRoundRobin:
		simCfg.Policy = protocol.PolicyRoundRobin
	case PolicyClosest:
		simCfg.Policy = protocol.PolicyClosest
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.Policy)
	}
	switch cfg.Consistency {
	case ConsistencyNone, "":
		// All objects replicate freely.
	case ConsistencyMixed:
		mgr, err := consistency.New(u, consistency.DefaultMix(), topo.NumNodes(), 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		simCfg.Consistency = mgr
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownConsistency, cfg.Consistency)
	}
	if cfg.NumRedirectors > 0 {
		simCfg.NumRedirectors = cfg.NumRedirectors
	}
	simCfg.PoissonArrivals = cfg.PoissonArrivals
	simCfg.Net.Contention = cfg.LinkContention
	if cfg.SwitchTo != "" {
		to, err := buildWorkload(cfg.SwitchTo, u, topo, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		simCfg.WorkloadSwitch.At = cfg.SwitchAt
		simCfg.WorkloadSwitch.To = to
	}
	if cfg.TraceWriter != nil {
		simCfg.ExtraObserver = trace.NewWriter(cfg.TraceWriter)
	}
	if cfg.FaultSchedule != "" {
		spec, err := fault.ParseSchedule(cfg.FaultSchedule)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
		simCfg.Faults = spec
	}
	simCfg.Protocol.ReplicaFloor = cfg.ReplicaFloor
	simCfg.Protocol.AvailabilityWeight = cfg.AvailabilityWeight
	simCfg.Ctrl.Retries = cfg.CtrlRetries
	simCfg.Ctrl.Timeout = cfg.CtrlTimeout
	return &simCfg, nil
}

func buildWorkload(w Workload, u object.Universe, topo *topology.Topology, seed int64) (workload.Generator, error) {
	switch w {
	case Zipf:
		return workload.NewZipf(u)
	case HotSites:
		return workload.NewHotSites(u, topo.NumNodes(), 0.9, seed)
	case HotPages:
		return workload.NewHotPages(u, 0.1, 0.9, seed)
	case Regional:
		return workload.NewRegional(u, topo, 0.01, 0.9)
	case Uniform:
		return workload.NewUniform(u)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, w)
	}
}

func convert(res *sim.Results) *Result {
	conv := func(in []metrics.Point) []Point {
		out := make([]Point, len(in))
		for i, p := range in {
			out[i] = Point{T: p.T, V: p.V}
		}
		return out
	}
	r := &Result{
		Summary: Summary{
			BandwidthInitial:      res.BandwidthStats.Initial,
			BandwidthEquilibrium:  res.BandwidthStats.Equilibrium,
			BandwidthReductionPct: res.BandwidthStats.ReductionPercent,
			LatencyInitial:        res.LatencyStats.Initial,
			LatencyEquilibrium:    res.LatencyStats.Equilibrium,
			LatencyReductionPct:   res.LatencyStats.ReductionPercent,
			OverheadPercent:       res.OverheadPercent,
			MaxLoadPeak:           res.MaxLoadPeak,
			MaxLoadSettled:        res.MaxLoadSettled,
			AdjustmentTime:        res.AdjustmentTime,
			Adjusted:              res.Adjusted,
			AvgReplicas:           res.AvgReplicas,
			TotalServed:           res.TotalServed,
			TimedOutRequests:      res.TimedOutRequests,
			GeoMigrations:         res.Counters.GeoMigrations,
			GeoReplications:       res.Counters.GeoReplications,
			LoadMigrations:        res.Counters.LoadMigrations,
			LoadReplications:      res.Counters.LoadReplications,
			Drops:                 res.Counters.Drops,
			Refusals:              res.Counters.Refusals,

			HostFailures:             res.Failures,
			HostRecoveries:           res.Recoveries,
			LinkFailures:             res.LinkFailures,
			LinkRecoveries:           res.LinkRecoveries,
			FailedRequests:           res.FailedRequests,
			Outages:                  res.Outages,
			UnavailableObjectSeconds: res.UnavailObjSecs,
			BelowFloorObjectSeconds:  res.BelowFloorObjSecs,
			RepairReplications:       res.Counters.RepairReplications,
			RepairByteHops:           res.RepairByteHops,

			CtrlEnabled:       res.CtrlEnabled,
			CtrlRPCAttempts:   res.CtrlStats.Attempts,
			CtrlRPCRetries:    res.CtrlStats.Retries,
			CtrlRPCTimeouts:   res.CtrlStats.Timeouts,
			CtrlRPCLost:       res.CtrlStats.Lost,
			CtrlNotifiesLost:  res.CtrlStats.NotifiesLost,
			DeferredMoves:     res.Counters.DeferredMoves,
			OrphansHealed:     res.OrphansHealed,
			ReconcileRuns:     res.ReconcileRuns,
			ReconcileByteHops: res.ReconcileByteHops,
		},
		Bandwidth:   conv(res.Bandwidth),
		Latency:     conv(res.Latency),
		LatencyP99:  conv(res.LatencyP99),
		OverheadPct: conv(res.OverheadPct),
		MaxLoad:     conv(res.MaxLoad),
		raw:         res,
	}
	r.HostLoad = make([]LoadSample, len(res.HostLoad))
	for i, s := range res.HostLoad {
		r.HostLoad[i] = LoadSample{T: s.T, Actual: s.Actual, Lower: s.Lower, Upper: s.Upper}
	}
	return r
}

// WriteSummary renders the run's summary table to w.
func (r *Result) WriteSummary(w io.Writer) error {
	return report.Summary(r.raw).Render(w)
}
