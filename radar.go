// Package radar is a from-scratch reproduction of "A Dynamic Object
// Replication and Migration Protocol for an Internet Hosting Service"
// (M. Rabinovich, I. Rabinovich, R. Rajaraman, A. Aggarwal, ICDCS 1999) —
// the protocol suite behind AT&T's RaDaR hosting platform.
//
// The package exposes a small facade over the full system: a discrete-event
// simulation of an Internet hosting service on a reconstructed 53-node
// UUNET backbone, running the paper's request distribution algorithm
// (Fig. 2), autonomous replica placement (Fig. 3), replica creation
// handshake (Fig. 4) and host offloading (Fig. 5), under the paper's four
// synthetic workloads. Run executes one configured simulation and returns
// the series and aggregates behind the paper's tables and figures.
//
// The implementation lives under internal/: the protocol state machines
// (internal/protocol), the theorem bounds (Theorems 1-5), the backbone
// topology and routing substrate, the network and server models, workload
// generators, the consistency layer of §5, and the experiment harness that
// regenerates every published table and figure (cmd/radar-experiments).
package radar

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"radar/internal/consistency"
	"radar/internal/experiments"
	"radar/internal/fault"
	"radar/internal/live"
	"radar/internal/metrics"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/report"
	"radar/internal/sim"
	"radar/internal/store"
	"radar/internal/substrate"
	"radar/internal/topology"
	"radar/internal/trace"
	"radar/internal/workload"
)

// Workload names one of the paper's synthetic demand shapes (§6.1).
type Workload string

// The paper's workloads plus a uniform control.
const (
	// Zipf draws pages by popularity rank under Zipf's law (Reeds
	// closed-form approximation).
	Zipf Workload = "zipf"
	// HotSites concentrates 90% of demand on pages initially homed at
	// ~10% of the sites: the hot-spot removal stress test.
	HotSites Workload = "hot-sites"
	// HotPages makes 10% of pages uniformly popular (90% of demand),
	// spread across all sites.
	HotPages Workload = "hot-pages"
	// Regional gives each of the four backbone regions a preferred 1%
	// slice of the namespace drawing 90% of its demand.
	Regional Workload = "regional"
	// Uniform requests every object equally from everywhere.
	Uniform Workload = "uniform"
)

// Policy names a request distribution algorithm.
type Policy string

// Request distribution policies.
const (
	// PolicyPaper is the paper's Fig. 2 algorithm: closest replica unless
	// its unit request count exceeds twice the minimum.
	PolicyPaper Policy = "paper"
	// PolicyRoundRobin rotates over replicas (a §3 strawman).
	PolicyRoundRobin Policy = "round-robin"
	// PolicyClosest always uses the closest replica (a §3 strawman).
	PolicyClosest Policy = "closest"
)

// Consistency selects the §5 replica consistency regime.
type Consistency string

// Consistency regimes.
const (
	// ConsistencyNone models an all-static object population: every
	// object may replicate freely (the paper's evaluation setting).
	ConsistencyNone Consistency = "none"
	// ConsistencyMixed assigns the §5 category mix (85% static, 10%
	// commuting, 5% non-commuting with migrate-only placement).
	ConsistencyMixed Consistency = "mixed"
)

// Sentinel errors returned by the facade. Callers match them with
// errors.Is; the returned errors wrap these with the offending value.
var (
	// ErrUnknownWorkload reports a Config.Workload (or SwitchTo) naming
	// none of the package's workloads.
	ErrUnknownWorkload = errors.New("radar: unknown workload")
	// ErrUnknownPolicy reports a Config.Policy naming none of the request
	// distribution policies.
	ErrUnknownPolicy = errors.New("radar: unknown policy")
	// ErrUnknownConsistency reports a Config.Consistency naming none of
	// the §5 consistency regimes.
	ErrUnknownConsistency = errors.New("radar: unknown consistency regime")
	// ErrTraceWriterShared reports a RunSeeds call that would share one
	// TraceWriter across concurrent runs, interleaving their streams.
	ErrTraceWriterShared = errors.New("radar: trace writer cannot be shared across concurrent runs")
	// ErrNoSeeds reports a RunSeeds call with an empty seed list.
	ErrNoSeeds = errors.New("radar: no seeds")
	// ErrBadFaultSchedule reports a Config.Faults.FaultSchedule that does
	// not parse or names unknown nodes.
	ErrBadFaultSchedule = errors.New("radar: bad fault schedule")
	// ErrBadConfig is the umbrella sentinel for out-of-range configuration
	// values. Every such failure is a *ConfigError wrapping ErrBadConfig,
	// so errors.Is(err, ErrBadConfig) catches them all and errors.As
	// recovers the offending field, value and reason.
	ErrBadConfig = errors.New("radar: bad config")
)

// Legacy per-field sentinels. Each now wraps ErrBadConfig, so both
// errors.Is(err, ErrBadReplicaFloor) and errors.Is(err, ErrBadConfig)
// match the corresponding validation failures — existing callers keep
// working while new code can catch the whole class at once.
var (
	// ErrBadReplicaFloor reports a negative Config.Faults.ReplicaFloor.
	ErrBadReplicaFloor = fmt.Errorf("%w: bad replica floor", ErrBadConfig)
	// ErrBadAvailabilityWeight reports a Config.Placement.AvailabilityWeight
	// outside [0, 1].
	ErrBadAvailabilityWeight = fmt.Errorf("%w: bad availability weight", ErrBadConfig)
	// ErrBadCtrlRetries reports a negative Config.Ctrl.CtrlRetries.
	ErrBadCtrlRetries = fmt.Errorf("%w: bad control-plane retry budget", ErrBadConfig)
	// ErrBadCtrlTimeout reports a negative Config.Ctrl.CtrlTimeout.
	ErrBadCtrlTimeout = fmt.Errorf("%w: bad control-plane timeout", ErrBadConfig)
	// ErrBadStoreSpec reports a Config.Storage.Store term that does not
	// parse under the replica-storage stack grammar.
	ErrBadStoreSpec = fmt.Errorf("%w: bad store spec", ErrBadConfig)
)

// ConfigError reports one configuration field whose value fails
// validation. It wraps ErrBadConfig and, when the field predates the
// grouped Config, the field's legacy sentinel — errors.Is matches either,
// and errors.As extracts the structured detail:
//
//	var ce *radar.ConfigError
//	if errors.As(err, &ce) {
//	    log.Printf("fix %s: %v (%s)", ce.Field, ce.Value, ce.Reason)
//	}
type ConfigError struct {
	// Field is the grouped path of the offending field, e.g.
	// "Faults.ReplicaFloor".
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what constraint the value violates.
	Reason string
	// legacy is the pre-grouping sentinel for this field, nil for fields
	// introduced after the redesign.
	legacy error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("radar: bad config: %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Unwrap exposes the error's sentinels to errors.Is: always ErrBadConfig,
// plus the field's legacy sentinel when one exists (the legacy sentinels
// themselves wrap ErrBadConfig, so either path reaches it).
func (e *ConfigError) Unwrap() []error {
	if e.legacy != nil {
		return []error{ErrBadConfig, e.legacy}
	}
	return []error{ErrBadConfig}
}

// Placement groups the placement-policy knobs. It is embedded in Config,
// so fields read both grouped (cfg.Placement.Policy) and flat
// (cfg.Policy) — existing callers keep compiling.
type Placement struct {
	// Policy selects the request distribution algorithm.
	Policy Policy
	// AvailabilityWeight w in [0, 1] arms the availability-aware placement
	// objective: replicate/migrate candidates are ordered by a blend of
	// the paper's farthest-first distance rule (weight 1-w) and a
	// failure-domain term (weight w) favoring new copies placed far from
	// the object's existing replicas, floor-threatening migrations are
	// demoted behind safe candidates, and replica-floor repair becomes
	// refusal-aware with its accept watermark relaxed from lw toward hw by
	// w. Zero (the default) keeps the run byte-identical to the paper's
	// protocol.
	AvailabilityWeight float64
}

// Validate checks the placement group in isolation.
func (p Placement) Validate() error {
	switch p.Policy {
	case PolicyPaper, PolicyRoundRobin, PolicyClosest, "":
	default:
		return fmt.Errorf("%w: %q", ErrUnknownPolicy, p.Policy)
	}
	if p.AvailabilityWeight < 0 || p.AvailabilityWeight > 1 || p.AvailabilityWeight != p.AvailabilityWeight {
		return &ConfigError{
			Field: "Placement.AvailabilityWeight", Value: p.AvailabilityWeight,
			Reason: "outside [0, 1]", legacy: ErrBadAvailabilityWeight,
		}
	}
	return nil
}

// Faults groups the fault-injection and availability knobs. It is
// embedded in Config, so fields read both grouped
// (cfg.Faults.FaultSchedule) and flat (cfg.FaultSchedule).
type Faults struct {
	// FaultSchedule, when non-empty, enables deterministic fault
	// injection. Semicolon-separated clauses: "crash:NODE@START[+DOWNTIME]"
	// crashes a host (omitting the downtime makes it permanent),
	// "link:A-B@START[+DOWNTIME]" cuts a backbone link, and
	// "mtbf:DUR; mttr:DUR" (plus "linkmtbf"/"linkmttr") adds stochastic
	// exponential failure/repair cycles drawn from the run's seed.
	// Durations use Go syntax ("3m", "90s"). Faults are bit-reproducible:
	// equal seeds give identical fault timelines, and an empty schedule
	// leaves the run byte-identical to earlier releases.
	FaultSchedule string
	// ReplicaFloor, when > 1, makes the system keep at least that many
	// replicas per object: the redirector refuses drops below the floor
	// and hosts re-replicate thinned objects during placement runs (repair
	// replications, reported separately). Zero or one keeps the paper's
	// behavior: replicas exist only where demand warrants them.
	ReplicaFloor int
}

// Validate checks the faults group in isolation.
func (f Faults) Validate() error {
	if f.ReplicaFloor < 0 {
		return &ConfigError{
			Field: "Faults.ReplicaFloor", Value: f.ReplicaFloor,
			Reason: "negative", legacy: ErrBadReplicaFloor,
		}
	}
	if f.FaultSchedule != "" {
		spec, err := fault.ParseSchedule(f.FaultSchedule)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
		if err := spec.Validate(substrate.UUNET().Topo.NumNodes()); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
	}
	return nil
}

// Ctrl groups the unreliable-control-plane knobs. It is embedded in
// Config, so fields read both grouped (cfg.Ctrl.CtrlRetries) and flat
// (cfg.CtrlRetries).
type Ctrl struct {
	// CtrlRetries overrides the unreliable control plane's RPC retry
	// budget (attempts = 1 + retries); CtrlTimeout overrides its
	// per-attempt timeout. Both only matter when FaultSchedule carries
	// message-fault clauses (drop/dup/cdelay); zero keeps the defaults
	// (3 retries, 1s).
	CtrlRetries int
	CtrlTimeout time.Duration
}

// Validate checks the control-plane group in isolation.
func (c Ctrl) Validate() error {
	if c.CtrlRetries < 0 {
		return &ConfigError{
			Field: "Ctrl.CtrlRetries", Value: c.CtrlRetries,
			Reason: "negative", legacy: ErrBadCtrlRetries,
		}
	}
	if c.CtrlTimeout < 0 {
		return &ConfigError{
			Field: "Ctrl.CtrlTimeout", Value: c.CtrlTimeout,
			Reason: "negative", legacy: ErrBadCtrlTimeout,
		}
	}
	return nil
}

// Live groups the live serving mode knobs. It is embedded in Config, so
// fields read both grouped (cfg.Live.LiveMode) and flat (cfg.LiveMode).
type Live struct {
	// LiveMode runs the configuration against an in-process loopback fleet
	// of real HTTP servers instead of the simulator: one listener per
	// backbone node, each owning the node's protocol host (and redirector,
	// on redirector locations), with a driver replaying the simulator's
	// event schedule over the wire. The deterministic simulation remains
	// the executable spec — a healthy live run reproduces the simulator's
	// placement decision sequence — but live mode refuses the
	// simulation-only subsystems (fault injection, storage stacks, mixed
	// consistency, link contention, sharding, trace writers).
	LiveMode bool
	// LiveMaxInflightCreates caps concurrent CreateObj executions per live
	// node (duplicate messages are deduplicated and answer the cached
	// verdict). Zero selects the default limit.
	LiveMaxInflightCreates int
	// LiveFreeRunning lets the fleet own its clocks: nodes self-schedule
	// measurement, placement, and census ticks on jittered wall-clock
	// timers and the load generator paces requests in real time, with
	// Duration read as wall-clock run length. The run is no longer
	// replayable against the simulator — correctness in this mode is
	// asserted by invariant checking (package live/check), not sequence
	// equality. Requires LiveMode.
	LiveFreeRunning bool
}

// Validate checks the live group in isolation.
func (l Live) Validate() error {
	if l.LiveMaxInflightCreates < 0 {
		return &ConfigError{
			Field: "Live.LiveMaxInflightCreates", Value: l.LiveMaxInflightCreates,
			Reason: "negative",
		}
	}
	if l.LiveFreeRunning && !l.LiveMode {
		return &ConfigError{
			Field: "Live.LiveFreeRunning", Value: true,
			Reason: "free-running mode requires LiveMode",
		}
	}
	return nil
}

// Storage groups the replica-storage stack knobs. It is embedded in
// Config; the zero value selects the default in-memory backend, which is
// byte-identical to releases that predate storage modeling.
type Storage struct {
	// Store is a replica-storage stack term. The grammar composes
	// backends and decorators:
	//
	//	mem[:CAP]                      in-memory, optional replica capacity
	//	disk[:LATENCY]                 unbounded, fixed per-serve latency
	//	cache(mem[:CAP], TERM)        small memory tier over a slower TERM
	//	mirror(TERM, TERM)            paired backends with read-repair
	//	faulty(TERM[, mtbf:D][, mttr:D][, penalty:D])
	//	                               crash/degrade cycles over TERM
	//	metered(TERM)                 per-layer counters around TERM
	//
	// Examples: "mem", "cache(mem:64,disk:5ms)",
	// "mirror(faulty(mem),mem)". Empty selects the default memory
	// backend.
	Store string
}

// Validate checks the storage group in isolation.
func (s Storage) Validate() error {
	if _, err := store.ParseSpec(s.Store); err != nil {
		return &ConfigError{
			Field: "Storage.Store", Value: s.Store,
			Reason: err.Error(), legacy: ErrBadStoreSpec,
		}
	}
	return nil
}

// Config configures one simulation run. The zero value is not usable;
// start from DefaultConfig. Related knobs are grouped into embedded
// sub-structs (Placement, Faults, Ctrl, Storage); embedding promotes
// their fields, so both cfg.Placement.Policy and cfg.Policy refer to the
// same field and pre-grouping callers compile unchanged.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Workload selects the demand shape.
	Workload Workload
	// Objects is the hosted object count (Table 1: 10,000).
	Objects int
	// ObjectSizeBytes is the uniform object size (Table 1: 12 KB).
	ObjectSizeBytes int
	// Duration is the simulated time span.
	Duration time.Duration
	// HighLoad selects the Figure 9 watermarks (50/40) instead of
	// Table 1's (90/80).
	HighLoad bool
	// Static disables dynamic placement (the no-replication baseline).
	Static bool
	// Consistency selects the §5 object category regime.
	Consistency Consistency
	// NumRedirectors hash-partitions the URL namespace (default 1).
	NumRedirectors int
	// PoissonArrivals switches gateways from the paper's constant
	// request spacing to Poisson arrivals.
	PoissonArrivals bool
	// LinkContention serializes transfers on each directed link instead
	// of the paper's fixed per-hop transmission cost.
	LinkContention bool
	// Shards partitions the request-serving plane into this many shards
	// executed concurrently between deterministic barriers, with results
	// bit-identical to the serial engine at every shard count. 0 or 1
	// (the default) selects the serial engine; -1 selects one shard per
	// backbone region. Sharding is incompatible with LinkContention and
	// ConsistencyMixed, whose cross-host feedback cannot be partitioned.
	Shards int
	// ShardQuantum caps the sharded engine's barrier interval in virtual
	// time; zero lets windows run to the next global protocol event.
	// Results are bit-identical at any quantum. Ignored by serial runs.
	ShardQuantum time.Duration
	// SwitchTo, when non-empty, swaps the demand to this workload at
	// SwitchAt — for responsiveness studies of demand-pattern changes.
	SwitchTo Workload
	// SwitchAt is the virtual time of the workload switch.
	SwitchAt time.Duration
	// TraceWriter, when non-nil, receives a JSONL stream of every
	// placement protocol event (migrations, replications, drops,
	// refusals) for offline analysis.
	TraceWriter io.Writer

	Placement
	Faults
	Ctrl
	Storage
	Live
}

// DefaultConfig returns the paper's Table 1 configuration under the given
// workload.
func DefaultConfig(w Workload) Config {
	return Config{
		Seed:            1,
		Workload:        w,
		Objects:         10000,
		ObjectSizeBytes: 12 << 10,
		Duration:        40 * time.Minute,
		Placement:       Placement{Policy: PolicyPaper},
		Consistency:     ConsistencyNone,
		NumRedirectors:  1,
	}
}

// Validate reports whether the configuration names a known workload,
// policy and consistency regime and carries usable simulation parameters.
// Run and RunSeeds validate internally; calling Validate first lets a
// caller separate configuration errors from execution errors. All
// returned errors wrap the package's sentinel errors (ErrUnknownWorkload,
// ErrBadConfig and siblings) or the substrate's validation errors, so
// errors.Is works. Each embedded group also validates in isolation via
// its own Validate method.
func (c Config) Validate() error {
	if !knownWorkload(c.Workload) {
		return fmt.Errorf("%w: %q", ErrUnknownWorkload, c.Workload)
	}
	if c.SwitchTo != "" && !knownWorkload(c.SwitchTo) {
		return fmt.Errorf("%w: switch target %q", ErrUnknownWorkload, c.SwitchTo)
	}
	switch c.Consistency {
	case ConsistencyNone, ConsistencyMixed, "":
	default:
		return fmt.Errorf("%w: %q", ErrUnknownConsistency, c.Consistency)
	}
	u := object.Universe{Count: c.Objects, SizeBytes: c.ObjectSizeBytes}
	if err := u.Validate(); err != nil {
		return err
	}
	if c.Duration < 0 {
		return fmt.Errorf("radar: negative duration %v", c.Duration)
	}
	if c.NumRedirectors < 0 {
		return fmt.Errorf("radar: negative redirector count %d", c.NumRedirectors)
	}
	if c.SwitchAt < 0 {
		return fmt.Errorf("radar: negative switch time %v", c.SwitchAt)
	}
	if c.Shards < -1 {
		return &ConfigError{
			Field: "Shards", Value: c.Shards,
			Reason: "must be -1 (one shard per region), 0/1 (serial) or >= 2",
		}
	}
	if c.ShardQuantum < 0 {
		return &ConfigError{
			Field: "ShardQuantum", Value: c.ShardQuantum,
			Reason: "negative",
		}
	}
	if c.Shards == -1 || c.Shards >= 2 {
		if c.LinkContention {
			return &ConfigError{
				Field: "Shards", Value: c.Shards,
				Reason: "sharded engine is incompatible with LinkContention",
			}
		}
		if c.Consistency == ConsistencyMixed {
			return &ConfigError{
				Field: "Shards", Value: c.Shards,
				Reason: "sharded engine is incompatible with ConsistencyMixed",
			}
		}
	}
	if err := c.Placement.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Ctrl.Validate(); err != nil {
		return err
	}
	if err := c.Storage.Validate(); err != nil {
		return err
	}
	if err := c.Live.Validate(); err != nil {
		return err
	}
	if c.LiveMode {
		reason := ""
		switch {
		case c.Faults.FaultSchedule != "":
			reason = "live mode is incompatible with fault injection (kill live nodes instead)"
		case c.Storage.Store != "":
			reason = "live mode is incompatible with replica-storage stacks"
		case c.Consistency == ConsistencyMixed:
			reason = "live mode is incompatible with mixed consistency"
		case c.LinkContention:
			reason = "live mode is incompatible with link contention"
		case c.Shards != 0 && c.Shards != 1:
			reason = "live mode is incompatible with the sharded engine"
		case c.TraceWriter != nil:
			reason = "live mode does not support trace writers"
		}
		if reason != "" {
			return &ConfigError{Field: "Live.LiveMode", Value: true, Reason: reason}
		}
	}
	return nil
}

// knownWorkload reports whether w names one of the package's workloads.
func knownWorkload(w Workload) bool {
	switch w {
	case Zipf, HotSites, HotPages, Regional, Uniform:
		return true
	}
	return false
}

// Point is one sample of a reported time series.
type Point struct {
	// T is the bucket start time.
	T time.Duration
	// V is the bucket value.
	V float64
}

// LoadSample is one Figure 8b sample: a host's measured load between its
// lower and upper protocol estimates.
type LoadSample struct {
	T      time.Duration
	Actual float64
	Lower  float64
	Upper  float64
}

// Summary carries a run's headline numbers.
type Summary struct {
	// BandwidthInitial/Equilibrium are backbone traffic levels in
	// byte×hops per second at the start and end of the run;
	// BandwidthReductionPct compares them (Figure 6).
	BandwidthInitial      float64
	BandwidthEquilibrium  float64
	BandwidthReductionPct float64
	// Latency aggregates, in seconds (Figure 6).
	LatencyInitial      float64
	LatencyEquilibrium  float64
	LatencyReductionPct float64
	// OverheadPercent is protocol traffic as a share of total (Figure 7).
	OverheadPercent float64
	// MaxLoadPeak/Settled track the hottest server (Figure 8a).
	MaxLoadPeak    float64
	MaxLoadSettled float64
	// AdjustmentTime is Table 2's responsiveness metric; Adjusted is
	// false when the run never settled.
	AdjustmentTime time.Duration
	Adjusted       bool
	// AvgReplicas is the final average number of replicas per object
	// (Table 2).
	AvgReplicas float64
	// Requests served and abandoned.
	TotalServed      int64
	TimedOutRequests int64
	// Placement activity.
	GeoMigrations    int64
	GeoReplications  int64
	LoadMigrations   int64
	LoadReplications int64
	Drops            int64
	Refusals         int64
	// Availability metrics, all zero unless fault injection was
	// configured (Config.FaultSchedule).
	HostFailures   int64
	HostRecoveries int64
	LinkFailures   int64
	LinkRecoveries int64
	// FailedRequests counts requests lost to faults: crashed host,
	// severed path, or no reachable replica.
	FailedRequests int64
	// Outages counts windows during which an object had zero live
	// replicas; UnavailableObjectSeconds integrates their duration.
	Outages                  int64
	UnavailableObjectSeconds float64
	// BelowFloorObjectSeconds integrates time objects spent below
	// Config.ReplicaFloor.
	BelowFloorObjectSeconds float64
	// RepairReplications and RepairByteHops measure the re-replication
	// work spent restoring the replica floor.
	RepairReplications int64
	RepairByteHops     int64
	// Unreliable control plane metrics, all zero unless the fault schedule
	// carried message-fault clauses (drop/dup/cdelay). CtrlEnabled records
	// whether the plane was armed.
	CtrlEnabled bool
	// CtrlRPCAttempts/Retries/Timeouts/Lost count control RPC activity;
	// CtrlNotifiesLost counts one-way notifications that never arrived.
	CtrlRPCAttempts  int64
	CtrlRPCRetries   int64
	CtrlRPCTimeouts  int64
	CtrlRPCLost      int64
	CtrlNotifiesLost int64
	// DeferredMoves counts placement moves pushed to a later placement
	// interval after a lost handshake.
	DeferredMoves int64
	// OrphansHealed counts replicas re-registered by anti-entropy
	// reconciliation; ReconcileRuns/ReconcileByteHops measure the
	// reconciliation passes and their digest traffic.
	OrphansHealed     int64
	ReconcileRuns     int64
	ReconcileByteHops int64
	// Replica-storage stack aggregates, summed across all hosts and stack
	// layers; all zero unless Config.Storage selects a non-default stack.
	// StoreEnabled records whether one was configured; StoreSpec is its
	// canonical term. Per-layer breakdowns are in Result.StoreLayers
	// (Summary stays comparable with ==, so only scalars live here).
	StoreEnabled    bool
	StoreSpec       string
	StoreHits       int64
	StoreMisses     int64
	StoreEvictions  int64
	StoreRepairs    int64
	StoreRefetches  int64
	StoreCrashes    int64
	StoreLostWrites int64
}

// StoreLayer is one layer of the replica-storage stack's per-layer
// accounting, summed across hosts, in the stack's pre-order (a decorator
// precedes the backends it wraps).
type StoreLayer struct {
	// Label names the layer kind: mem, disk, cache, mirror, faulty, or a
	// metered layer's custom label.
	Label string
	// Creates/Drops/Serves count replica installs, removals and request
	// servings at this layer.
	Creates, Drops, Serves int64
	// Hits/Misses/Evictions are cache-tier counters.
	Hits, Misses, Evictions int64
	// Repairs counts mirror read-repairs; Refetches counts serves a
	// faulty layer satisfied at its refetch penalty.
	Repairs, Refetches int64
	// Crashes/LostWrites count a faulty layer's outages and the creates
	// acknowledged during them.
	Crashes, LostWrites int64
	// Replicas/BytesUsed are the layer's final occupancy; CostNanos
	// accrues every serve's storage latency.
	Replicas, BytesUsed, CostNanos int64
}

// Result is everything one run produces.
type Result struct {
	Summary Summary
	// Per-bucket series behind Figures 6, 7, 8a and 9.
	Bandwidth   []Point
	Latency     []Point
	LatencyP99  []Point
	OverheadPct []Point
	MaxLoad     []Point
	// HostLoad is the Figure 8b trace for the tracked host.
	HostLoad []LoadSample
	// StoreLayers is the replica-storage stack's per-layer accounting,
	// empty unless Config.Storage selected a non-default stack.
	StoreLayers []StoreLayer

	raw *sim.Results
}

// Run executes one simulation and returns its results. It is
// RunContext with a background context.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation under ctx and returns its results.
// The simulation engine polls ctx every few thousand events, so canceling
// a long run returns promptly (microseconds of simulation work, not
// virtual-time minutes) with ctx.Err(). A run that completes without
// cancellation is bit-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	simCfg, err := buildSimConfig(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.LiveMode {
		return runLive(ctx, cfg, simCfg)
	}
	s, err := sim.New(*simCfg)
	if err != nil {
		return nil, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.InvariantsError != nil {
		return nil, fmt.Errorf("radar: post-run invariant check failed: %w", res.InvariantsError)
	}
	return convert(res), nil
}

// RunSeeds executes cfg once per seed, up to parallelism simulations
// concurrently (<= 0 selects GOMAXPROCS), and returns one Result per
// seed in seed order. It is RunSeedsContext with a background context.
func RunSeeds(cfg Config, seeds []int64, parallelism int) ([]*Result, error) {
	return RunSeedsContext(context.Background(), cfg, seeds, parallelism)
}

// RunSeedsContext is RunSeeds with cancellation: canceling ctx abandons
// queued runs, interrupts in-flight ones promptly, and returns ctx's
// error. Each run gets its own independently built generators and
// consistency state, so runs are race-free and each Result is
// bit-identical to Run with that seed. An empty seed list returns
// ErrNoSeeds; a TraceWriter with more than one seed returns
// ErrTraceWriterShared, because concurrent runs would interleave their
// event streams.
func RunSeedsContext(ctx context.Context, cfg Config, seeds []int64, parallelism int) ([]*Result, error) {
	if len(seeds) == 0 {
		return nil, ErrNoSeeds
	}
	if cfg.TraceWriter != nil && len(seeds) > 1 {
		return nil, fmt.Errorf("%w: %d seeds", ErrTraceWriterShared, len(seeds))
	}
	if cfg.LiveMode {
		return nil, &ConfigError{
			Field: "Live.LiveMode", Value: true,
			Reason: "live mode runs one fleet at a time; use Run per seed",
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]experiments.Job, len(seeds))
	for i, seed := range seeds {
		seedCfg := cfg
		seedCfg.Seed = seed
		simCfg, err := buildSimConfig(seedCfg)
		if err != nil {
			return nil, fmt.Errorf("radar: seed %d: %w", seed, err)
		}
		jobs[i] = experiments.Job{Label: fmt.Sprintf("seed/%d", seed), Config: *simCfg}
	}
	eng := experiments.Engine{Parallelism: parallelism, FailFast: true}
	results, err := eng.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(results))
	for i, r := range results {
		out[i] = convert(r.Results)
	}
	return out, nil
}

// runLive executes one configuration against an in-process loopback
// fleet: real HTTP listeners, one per backbone node, driven through the
// simulator's event schedule. Results use the same schema as a simulated
// run (live-only gaps — e.g. post-run invariant sweeps — stay zero).
func runLive(ctx context.Context, cfg Config, simCfg *sim.Config) (*Result, error) {
	liveCfg := live.Config{
		Sim:                *simCfg,
		MaxInflightCreates: cfg.LiveMaxInflightCreates,
		FreeRunning:        cfg.LiveFreeRunning,
	}
	if err := liveCfg.Validate(); err != nil {
		return nil, &ConfigError{Field: "Live.LiveMode", Value: true, Reason: err.Error()}
	}
	fleet, err := live.NewFleet(liveCfg)
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	if cfg.LiveFreeRunning {
		// Free-running: wait for readiness (nodes Start-ed, tickers live),
		// generate load for the wall-clock duration, and report the real
		// counters plus a final census — there is no virtual-time replay.
		if err := fleet.WaitReady(10 * time.Second); err != nil {
			return nil, err
		}
		free, err := live.NewFreeDriver(fleet.Config(), fleet.URLs())
		if err != nil {
			return nil, err
		}
		if err := free.Run(ctx, fleet.Config().Sim.Duration); err != nil {
			return nil, err
		}
		return convert(free.Results(free.Census())), nil
	}
	if err := fleet.WaitHealthy(10 * time.Second); err != nil {
		return nil, err
	}
	d, err := live.NewDriver(fleet.Config(), fleet.URLs())
	if err != nil {
		return nil, err
	}
	res, err := d.Run(ctx)
	if err != nil {
		return nil, err
	}
	return convert(res), nil
}

func buildSimConfig(cfg Config) (*sim.Config, error) {
	topo := substrate.UUNET().Topo
	u := object.Universe{Count: cfg.Objects, SizeBytes: cfg.ObjectSizeBytes}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	gen, err := buildWorkload(cfg.Workload, u, topo, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.DefaultConfig(gen, cfg.Seed)
	simCfg.Topo = topo
	simCfg.Universe = u
	if cfg.Duration > 0 {
		simCfg.Duration = cfg.Duration
	}
	if cfg.HighLoad {
		simCfg.Protocol = protocol.HighLoadParams()
	}
	simCfg.DynamicPlacement = !cfg.Static
	switch cfg.Placement.Policy {
	case PolicyPaper, "":
		simCfg.Policy = protocol.PolicyPaper
	case PolicyRoundRobin:
		simCfg.Policy = protocol.PolicyRoundRobin
	case PolicyClosest:
		simCfg.Policy = protocol.PolicyClosest
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.Placement.Policy)
	}
	switch cfg.Consistency {
	case ConsistencyNone, "":
		// All objects replicate freely.
	case ConsistencyMixed:
		mgr, err := consistency.New(u, consistency.DefaultMix(), topo.NumNodes(), 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		simCfg.Consistency = mgr
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownConsistency, cfg.Consistency)
	}
	if cfg.NumRedirectors > 0 {
		simCfg.NumRedirectors = cfg.NumRedirectors
	}
	simCfg.PoissonArrivals = cfg.PoissonArrivals
	simCfg.Net.Contention = cfg.LinkContention
	simCfg.Shards = cfg.Shards
	simCfg.ShardQuantum = cfg.ShardQuantum
	if cfg.SwitchTo != "" {
		to, err := buildWorkload(cfg.SwitchTo, u, topo, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		simCfg.WorkloadSwitch.At = cfg.SwitchAt
		simCfg.WorkloadSwitch.To = to
	}
	if cfg.TraceWriter != nil {
		simCfg.ExtraObserver = trace.NewWriter(cfg.TraceWriter)
	}
	if cfg.Faults.FaultSchedule != "" {
		spec, err := fault.ParseSchedule(cfg.Faults.FaultSchedule)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFaultSchedule, err)
		}
		simCfg.Faults = spec
	}
	simCfg.Protocol.ReplicaFloor = cfg.Faults.ReplicaFloor
	simCfg.Protocol.AvailabilityWeight = cfg.Placement.AvailabilityWeight
	simCfg.Ctrl.Retries = cfg.Ctrl.CtrlRetries
	simCfg.Ctrl.Timeout = cfg.Ctrl.CtrlTimeout
	storeSpec, err := store.ParseSpec(cfg.Storage.Store)
	if err != nil {
		return nil, &ConfigError{
			Field: "Storage.Store", Value: cfg.Storage.Store,
			Reason: err.Error(), legacy: ErrBadStoreSpec,
		}
	}
	simCfg.Store = storeSpec
	return &simCfg, nil
}

func buildWorkload(w Workload, u object.Universe, topo *topology.Topology, seed int64) (workload.Generator, error) {
	switch w {
	case Zipf:
		return workload.NewZipf(u)
	case HotSites:
		return workload.NewHotSites(u, topo.NumNodes(), 0.9, seed)
	case HotPages:
		return workload.NewHotPages(u, 0.1, 0.9, seed)
	case Regional:
		return workload.NewRegional(u, topo, 0.01, 0.9)
	case Uniform:
		return workload.NewUniform(u)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, w)
	}
}

func convert(res *sim.Results) *Result {
	conv := func(in []metrics.Point) []Point {
		out := make([]Point, len(in))
		for i, p := range in {
			out[i] = Point{T: p.T, V: p.V}
		}
		return out
	}
	r := &Result{
		Summary: Summary{
			BandwidthInitial:      res.BandwidthStats.Initial,
			BandwidthEquilibrium:  res.BandwidthStats.Equilibrium,
			BandwidthReductionPct: res.BandwidthStats.ReductionPercent,
			LatencyInitial:        res.LatencyStats.Initial,
			LatencyEquilibrium:    res.LatencyStats.Equilibrium,
			LatencyReductionPct:   res.LatencyStats.ReductionPercent,
			OverheadPercent:       res.OverheadPercent,
			MaxLoadPeak:           res.MaxLoadPeak,
			MaxLoadSettled:        res.MaxLoadSettled,
			AdjustmentTime:        res.AdjustmentTime,
			Adjusted:              res.Adjusted,
			AvgReplicas:           res.AvgReplicas,
			TotalServed:           res.TotalServed,
			TimedOutRequests:      res.TimedOutRequests,
			GeoMigrations:         res.Counters.GeoMigrations,
			GeoReplications:       res.Counters.GeoReplications,
			LoadMigrations:        res.Counters.LoadMigrations,
			LoadReplications:      res.Counters.LoadReplications,
			Drops:                 res.Counters.Drops,
			Refusals:              res.Counters.Refusals,

			HostFailures:             res.Failures,
			HostRecoveries:           res.Recoveries,
			LinkFailures:             res.LinkFailures,
			LinkRecoveries:           res.LinkRecoveries,
			FailedRequests:           res.FailedRequests,
			Outages:                  res.Outages,
			UnavailableObjectSeconds: res.UnavailObjSecs,
			BelowFloorObjectSeconds:  res.BelowFloorObjSecs,
			RepairReplications:       res.Counters.RepairReplications,
			RepairByteHops:           res.RepairByteHops,

			CtrlEnabled:       res.CtrlEnabled,
			CtrlRPCAttempts:   res.CtrlStats.Attempts,
			CtrlRPCRetries:    res.CtrlStats.Retries,
			CtrlRPCTimeouts:   res.CtrlStats.Timeouts,
			CtrlRPCLost:       res.CtrlStats.Lost,
			CtrlNotifiesLost:  res.CtrlStats.NotifiesLost,
			DeferredMoves:     res.Counters.DeferredMoves,
			OrphansHealed:     res.OrphansHealed,
			ReconcileRuns:     res.ReconcileRuns,
			ReconcileByteHops: res.ReconcileByteHops,
		},
		Bandwidth:   conv(res.Bandwidth),
		Latency:     conv(res.Latency),
		LatencyP99:  conv(res.LatencyP99),
		OverheadPct: conv(res.OverheadPct),
		MaxLoad:     conv(res.MaxLoad),
		raw:         res,
	}
	r.HostLoad = make([]LoadSample, len(res.HostLoad))
	for i, s := range res.HostLoad {
		r.HostLoad[i] = LoadSample{T: s.T, Actual: s.Actual, Lower: s.Lower, Upper: s.Upper}
	}
	if res.StoreEnabled {
		r.Summary.StoreEnabled = true
		r.Summary.StoreSpec = res.StoreSpec
		r.StoreLayers = make([]StoreLayer, len(res.StoreLayers))
		for i, l := range res.StoreLayers {
			r.StoreLayers[i] = StoreLayer{
				Label: l.Label, Creates: l.Creates, Drops: l.Drops, Serves: l.Serves,
				Hits: l.Hits, Misses: l.Misses, Evictions: l.Evictions,
				Repairs: l.Repairs, Refetches: l.Refetches,
				Crashes: l.Crashes, LostWrites: l.LostWrites,
				Replicas: l.Replicas, BytesUsed: l.BytesUsed, CostNanos: l.CostNanos,
			}
			r.Summary.StoreHits += l.Hits
			r.Summary.StoreMisses += l.Misses
			r.Summary.StoreEvictions += l.Evictions
			r.Summary.StoreRepairs += l.Repairs
			r.Summary.StoreRefetches += l.Refetches
			r.Summary.StoreCrashes += l.Crashes
			r.Summary.StoreLostWrites += l.LostWrites
		}
	}
	return r
}

// WriteSummary renders the run's summary table to w.
func (r *Result) WriteSummary(w io.Writer) error {
	return report.Summary(r.raw).Render(w)
}
