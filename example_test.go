package radar_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"radar"
)

// ExampleRun runs one scaled-down simulation under uniform demand and
// inspects the headline numbers. Drop the Objects/Duration overrides to
// run at the paper's Table 1 scale.
func ExampleRun() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute

	res, err := radar.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("served requests:", res.Summary.TotalServed > 0)
	fmt.Println("bandwidth series recorded:", len(res.Bandwidth) > 0)
	// Output:
	// served requests: true
	// bandwidth series recorded: true
}

// ExampleRunContext shows cancellable execution: a caller-supplied
// deadline or cancel interrupts a long simulation promptly.
func ExampleRunContext() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := radar.RunContext(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed before deadline:", res.Summary.TotalServed > 0)
	// Output:
	// completed before deadline: true
}

// ExampleRunSeeds averages a metric over independent seeds; the runs
// execute concurrently and return in seed order.
func ExampleRunSeeds() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute

	results, err := radar.RunSeeds(cfg, []int64{1, 2, 3}, 0)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, r := range results {
		sum += r.Summary.BandwidthEquilibrium
	}
	fmt.Println("runs:", len(results))
	fmt.Println("mean equilibrium positive:", sum/float64(len(results)) > 0)
	// Output:
	// runs: 3
	// mean equilibrium positive: true
}

// ExampleConfigError shows the two ways to handle configuration errors:
// errors.Is catches the whole class (or a single legacy sentinel), and
// errors.As recovers the offending field, value and reason.
func ExampleConfigError() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Faults.ReplicaFloor = -1

	err := cfg.Validate()
	fmt.Println("bad config:", errors.Is(err, radar.ErrBadConfig))
	fmt.Println("legacy sentinel still matches:", errors.Is(err, radar.ErrBadReplicaFloor))
	var ce *radar.ConfigError
	if errors.As(err, &ce) {
		fmt.Printf("field %s = %v: %s\n", ce.Field, ce.Value, ce.Reason)
	}
	// Output:
	// bad config: true
	// legacy sentinel still matches: true
	// field Faults.ReplicaFloor = -1: negative
}

// ExampleConfig_storage runs a scaled-down simulation whose replicas live
// in a small memory cache over a 5ms disk tier and reads the per-layer
// accounting back from the result.
func ExampleConfig_storage() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute
	cfg.Storage.Store = "cache(mem:64,disk:5ms)"

	res, err := radar.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Println("store enabled:", s.StoreEnabled)
	fmt.Println("spec:", s.StoreSpec)
	fmt.Println("cache activity recorded:", s.StoreHits+s.StoreMisses > 0)
	fmt.Println("layers:", len(res.StoreLayers))
	// Output:
	// store enabled: true
	// spec: cache(mem:64,disk:5ms)
	// cache activity recorded: true
	// layers: 3
}

// ExampleResult_WriteSummary renders a run's summary table.
func ExampleResult_WriteSummary() {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.Objects = 500
	cfg.Duration = 2 * time.Minute

	res, err := radar.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteSummary(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mentions bandwidth equilibrium:", strings.Contains(b.String(), "bandwidth equilibrium"))
	// Output:
	// mentions bandwidth equilibrium: true
}
