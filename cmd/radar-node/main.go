// Command radar-node runs one live fleet member as a standalone process:
// a protocol host and FCFS server (and, on redirector locations, the
// redirector answering object requests with 302s) behind the HTTP/JSON
// control plane. In the default driver-paced mode nodes are clock-less —
// they advance only when a driver (radar-load) tells them what virtual
// time it is — so a fleet of these processes replays the simulator's
// schedule exactly. With -free-running the node owns its clock instead:
// measurement, placement, and census ticks self-schedule on jittered
// wall-clock timers, and verification shifts to radar-load's invariant
// checker.
//
// Every member of a fleet must be started with the same scenario and
// overrides, and the -peers list must name every node's base URL in node
// ID order (the entry for this node itself may be a placeholder).
//
// Lifecycle: SIGTERM (or SIGINT) begins a graceful drain — the listener
// stops accepting, in-flight requests finish within -drain, and the
// process exits 0 — while SIGKILL is the crash the chaos harness deals.
// A restarted node should be given -recovered so it re-announces its
// replicas to the fleet's redirectors before reporting ready. -ready-file
// names a file created once the node is serving and recovered: the
// process-level readiness signal the chaos controller's restart path
// waits on.
//
// Example (3 terminals, after picking ports):
//
//	radar-node -scenario steady-state-baseline -id 0 -listen 127.0.0.1:8300 -peers http://127.0.0.1:8300,http://127.0.0.1:8301,http://127.0.0.1:8302
//	radar-node -scenario steady-state-baseline -id 1 -listen 127.0.0.1:8301 -peers ...
//	radar-node -scenario steady-state-baseline -id 2 -listen 127.0.0.1:8302 -peers ...
//	radar-load -scenario steady-state-baseline -urls http://127.0.0.1:8300,http://127.0.0.1:8301,http://127.0.0.1:8302
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"radar/internal/live"
	"radar/internal/scenario"
	"radar/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name      = flag.String("scenario", "steady-state-baseline", "scenario the fleet replays")
		id        = flag.Int("id", -1, "this node's ID (0..n-1 in the scenario's topology)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		peers     = flag.String("peers", "", "comma-separated base URLs of every fleet member, in node ID order")
		duration  = flag.Duration("duration", 0, "override the scenario's virtual duration (0 = keep)")
		rps       = flag.Float64("rps", 0, "override the per-gateway request rate (0 = keep)")
		seed      = flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
		inflight  = flag.Int("max-inflight-creates", 0, "CreateObj concurrency limit (0 = default)")
		freeRun   = flag.Bool("free-running", false, "self-schedule control ticks on the wall clock instead of waiting for a driver")
		recovered = flag.Bool("recovered", false, "this is a restart: re-announce held replicas to the redirectors before reporting ready")
		readyFile = flag.String("ready-file", "", "create this file once serving and recovered (readiness signal for process supervisors)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown window on SIGTERM/SIGINT: finish in-flight requests, then exit")
	)
	flag.Parse()

	if *id < 0 {
		return fmt.Errorf("missing -id")
	}
	if *peers == "" {
		return fmt.Errorf("missing -peers")
	}

	sc, ok := scenario.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *name)
	}
	simCfg, err := sc.Config()
	if err != nil {
		return err
	}
	if *duration > 0 {
		simCfg.Duration = *duration
	}
	if *rps > 0 {
		simCfg.NodeRequestRPS = *rps
	}
	if *seed != 0 {
		simCfg.Seed = *seed
	}
	cfg := live.Config{Sim: simCfg, MaxInflightCreates: *inflight, FreeRunning: *freeRun}
	if err := cfg.Validate(); err != nil {
		return err
	}

	urls := strings.Split(*peers, ",")
	node, err := live.NewNode(cfg, topology.NodeID(*id), urls, nil)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	mode := "driver-paced"
	if *freeRun {
		mode = "free-running"
	}
	fmt.Printf("radar-node: node %d of scenario %s serving on http://%s (%s)\n", *id, *name, ln.Addr(), mode)

	srv := &http.Server{Handler: node.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	// Boot: in free-running mode this starts the tickers, and a recovered
	// node re-registers its replicas first. /readyz answers 200 from here.
	node.Start(time.Now(), *recovered)
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
			node.Stop()
			return fmt.Errorf("writing ready file: %w", err)
		}
		defer os.Remove(*readyFile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, finish what is in flight, stop
		// the node's own goroutines, exit 0.
		node.Stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		node.Stop()
		return err
	}
}
