// Command radar-node runs one live fleet member as a standalone process:
// a protocol host and FCFS server (and, on redirector locations, the
// redirector answering object requests with 302s) behind the HTTP/JSON
// control plane. Nodes are clock-less — they advance only when a driver
// (radar-load) tells them what virtual time it is — so a fleet of these
// processes replays the simulator's schedule exactly.
//
// Every member of a fleet must be started with the same scenario and
// overrides, and the -peers list must name every node's base URL in node
// ID order (the entry for this node itself may be a placeholder).
//
// Example (3 terminals, after picking ports):
//
//	radar-node -scenario steady-state-baseline -id 0 -listen 127.0.0.1:8300 -peers http://127.0.0.1:8300,http://127.0.0.1:8301,http://127.0.0.1:8302
//	radar-node -scenario steady-state-baseline -id 1 -listen 127.0.0.1:8301 -peers ...
//	radar-node -scenario steady-state-baseline -id 2 -listen 127.0.0.1:8302 -peers ...
//	radar-load -scenario steady-state-baseline -urls http://127.0.0.1:8300,http://127.0.0.1:8301,http://127.0.0.1:8302
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"radar/internal/live"
	"radar/internal/scenario"
	"radar/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("scenario", "steady-state-baseline", "scenario the fleet replays")
		id       = flag.Int("id", -1, "this node's ID (0..n-1 in the scenario's topology)")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		peers    = flag.String("peers", "", "comma-separated base URLs of every fleet member, in node ID order")
		duration = flag.Duration("duration", 0, "override the scenario's virtual duration (0 = keep)")
		rps      = flag.Float64("rps", 0, "override the per-gateway request rate (0 = keep)")
		seed     = flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
		inflight = flag.Int("max-inflight-creates", 0, "CreateObj concurrency limit (0 = default)")
	)
	flag.Parse()

	if *id < 0 {
		return fmt.Errorf("missing -id")
	}
	if *peers == "" {
		return fmt.Errorf("missing -peers")
	}

	sc, ok := scenario.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *name)
	}
	simCfg, err := sc.Config()
	if err != nil {
		return err
	}
	if *duration > 0 {
		simCfg.Duration = *duration
	}
	if *rps > 0 {
		simCfg.NodeRequestRPS = *rps
	}
	if *seed != 0 {
		simCfg.Seed = *seed
	}
	cfg := live.Config{Sim: simCfg, MaxInflightCreates: *inflight}
	if err := cfg.Validate(); err != nil {
		return err
	}

	urls := strings.Split(*peers, ",")
	node, err := live.NewNode(cfg, topology.NodeID(*id), urls, nil)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("radar-node: node %d of scenario %s serving on http://%s\n", *id, *name, ln.Addr())

	srv := &http.Server{Handler: node.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}
