// Command radar-topology inspects the reconstructed UUNET backbone: node
// and region listings, routing statistics, preference paths, and the
// redirector placement the simulator derives from them.
//
// Examples:
//
//	radar-topology                      # overview + per-region listing
//	radar-topology -path Tokyo:London   # the preference path Tokyo -> London
//	radar-topology -node Atlanta        # one node's links and distances
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"radar/internal/routing"
	"radar/internal/substrate"
	"radar/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-topology:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pathSpec = flag.String("path", "", "print the preference path between two nodes, e.g. Tokyo:London")
		nodeName = flag.String("node", "", "print one node's links and distance profile")
	)
	flag.Parse()

	// The shared substrate is the same frozen topology + routing table the
	// simulator and experiment suites use, so what this command prints is
	// exactly what every run sees.
	sub := substrate.UUNET()
	topo, routes := sub.Topo, sub.Routes

	if *pathSpec != "" {
		return printPath(topo, routes, *pathSpec)
	}
	if *nodeName != "" {
		return printNode(topo, routes, *nodeName)
	}
	printOverview(sub)
	return nil
}

func printOverview(sub *substrate.Substrate) {
	topo, routes := sub.Topo, sub.Routes
	fmt.Printf("Reconstructed UUNET backbone: %d nodes, %d links, diameter %d hops\n",
		topo.NumNodes(), topo.NumEdges(), routes.Diameter())
	fmt.Printf("substrate fingerprint: %016x\n", sub.Fingerprint())
	total := 0.0
	for i := 0; i < topo.NumNodes(); i++ {
		total += routes.AvgDistance(topology.NodeID(i))
	}
	fmt.Printf("mean inter-node distance: %.2f hops\n", total/float64(topo.NumNodes()))
	red := routes.MinAvgDistanceNode()
	fmt.Printf("redirector placement (min avg distance): %s (%.2f hops avg)\n\n",
		topo.Node(red).Name, routes.AvgDistance(red))
	for _, r := range topology.Regions() {
		ids := topo.NodesInRegion(r)
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = topo.Node(id).Name
		}
		fmt.Printf("%s (%d): %s\n", r, len(ids), strings.Join(names, ", "))
	}
}

func printPath(topo *topology.Topology, routes *routing.Table, spec string) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("path spec must be From:To, got %q", spec)
	}
	from, ok := topo.Lookup(parts[0])
	if !ok {
		return fmt.Errorf("unknown node %q", parts[0])
	}
	to, ok := topo.Lookup(parts[1])
	if !ok {
		return fmt.Errorf("unknown node %q", parts[1])
	}
	p := routes.PreferencePath(from, to)
	names := make([]string, len(p))
	for i, id := range p {
		names[i] = topo.Node(id).Name
	}
	fmt.Printf("%s (%d hops)\n", strings.Join(names, " -> "), len(p)-1)
	return nil
}

func printNode(topo *topology.Topology, routes *routing.Table, name string) error {
	id, ok := topo.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown node %q", name)
	}
	n := topo.Node(id)
	fmt.Printf("%s (id %d, %s)\n", n.Name, n.ID, n.Region)
	var links []string
	for _, w := range topo.Neighbors(id) {
		links = append(links, topo.Node(w).Name)
	}
	fmt.Printf("links: %s\n", strings.Join(links, ", "))
	fmt.Printf("average distance to other nodes: %.2f hops\n", routes.AvgDistance(id))
	far, dist := id, 0
	for i := 0; i < topo.NumNodes(); i++ {
		if d := routes.Distance(id, topology.NodeID(i)); d > dist {
			far, dist = topology.NodeID(i), d
		}
	}
	fmt.Printf("farthest node: %s (%d hops)\n", topo.Node(far).Name, dist)
	return nil
}
