// Command radar-load replays a scenario's workload against a live fleet
// over real HTTP: the load generator paces the simulator's exact event
// schedule, asks each object's redirector for a 302, follows it to the
// chosen replica host, and reports completions back — collecting the same
// metrics schema as a simulation run.
//
// By default it stands up an in-process loopback fleet (one HTTP listener
// per topology node) and drives it; with -urls it drives an externally
// started fleet of radar-node processes instead, which must have been
// launched with the same scenario and overrides.
//
// With -free-running the fleet owns its clocks: nodes self-schedule their
// control ticks, the generator paces requests in wall time, and instead of
// comparing against the simulator the run is judged by an invariant
// checker (-check) that scrapes the fleet's census and stats. -chaos takes
// the simulator's fault-schedule DSL and deals it for real — SIGKILL-style
// node crashes, control-plane partitions, client-hop latency — against the
// in-process fleet, with crash windows reported to the checker.
//
// Examples:
//
//	radar-load -list
//	radar-load -scenario steady-state-baseline -duration 2m -rps 10
//	radar-load -scenario steady-state-baseline -duration 2m -rps 10 -gate-zero-failed
//	radar-load -scenario steady-state-baseline -urls http://127.0.0.1:8300,http://127.0.0.1:8301,...
//	radar-load -scenario steady-state-baseline -free-running -duration 10s -check
//	radar-load -scenario steady-state-baseline -free-running -duration 15s -chaos "crash:2@5s+3s" -check
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"radar/internal/live"
	"radar/internal/live/chaos"
	"radar/internal/live/check"
	"radar/internal/live/livetest"
	"radar/internal/report"
	"radar/internal/routing"
	"radar/internal/scenario"
	"radar/internal/sim"
	"radar/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-load:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name        = flag.String("scenario", "steady-state-baseline", "scenario to replay (see -list)")
		list        = flag.Bool("list", false, "list the scenario corpus and exit")
		duration    = flag.Duration("duration", 0, "override the scenario's virtual duration (0 = keep); wall-clock in free-running mode")
		rps         = flag.Float64("rps", 0, "override the per-gateway request rate (0 = keep)")
		seed        = flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
		urls        = flag.String("urls", "", "comma-separated radar-node base URLs (empty = in-process loopback fleet)")
		inflight    = flag.Int("max-inflight-creates", 0, "per-node CreateObj concurrency limit (0 = default)")
		gateFailed  = flag.Bool("gate-zero-failed", false, "exit non-zero if any request failed or any node crashed")
		freeRunning = flag.Bool("free-running", false, "free-running mode: nodes self-schedule on wall clocks; generator paces in real time")
		chaosSched  = flag.String("chaos", "", "fault-DSL chaos schedule to deal against the fleet (implies -check; needs -free-running, in-process fleet)")
		doCheck     = flag.Bool("check", false, "scrape the fleet and assert protocol invariants; exit non-zero on violations (needs -free-running)")
		convergence = flag.Duration("convergence", 5*time.Second, "invariant checker's convergence budget: how long a bound may stay violated before it counts")
	)
	flag.Parse()

	if *list {
		for _, n := range scenario.Names() {
			sc, _ := scenario.ByName(n)
			fmt.Printf("%-40s %s\n", n, sc.Description)
		}
		return nil
	}
	if (*chaosSched != "" || *doCheck) && !*freeRunning {
		return fmt.Errorf("-chaos and -check need -free-running (driver-paced replay is verified against the simulator instead)")
	}

	cfg, err := buildConfig(*name, *duration, *rps, *seed, *inflight, *freeRunning)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *freeRunning {
		return runFree(ctx, cfg, *urls, *chaosSched, *doCheck || *chaosSched != "", *convergence, *gateFailed)
	}

	start := time.Now()
	var res *sim.Results
	if *urls != "" {
		fleet := strings.Split(*urls, ",")
		d, err := live.NewDriver(cfg, fleet)
		if err != nil {
			return err
		}
		res, err = d.Run(ctx)
		if err != nil {
			return err
		}
	} else {
		h, err := livetest.New(cfg)
		if err != nil {
			return err
		}
		defer h.Close()
		res, err = h.Run(ctx)
		if err != nil {
			return err
		}
	}
	wall := time.Since(start).Round(time.Millisecond)

	if err := report.Summary(res).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nlive replay: %d served, %d failed, %d dropped choices, %d timed out, %d crashes (wall time %v)\n",
		res.TotalServed, res.FailedRequests, res.DroppedChoices, res.TimedOutRequests, res.Failures, wall)

	if *gateFailed {
		if res.FailedRequests > 0 || res.DroppedChoices > 0 || res.Failures > 0 {
			return fmt.Errorf("gate: %d failed requests, %d dropped choices, %d crashes (want all zero)",
				res.FailedRequests, res.DroppedChoices, res.Failures)
		}
		fmt.Println("gate: zero failed requests")
	}
	return nil
}

// floorWaitTimeout bounds how long runFree waits for the fleet's initial
// floor repair before starting the invariant checker: objects seed with a
// single replica, so a fresh fleet legitimately spends its first moments
// below the replica floor.
const floorWaitTimeout = 30 * time.Second

// runFree executes a free-running run: wall-clock load generation, an
// optional chaos schedule against the in-process fleet, and an optional
// invariant checker whose violations fail the run.
func runFree(ctx context.Context, cfg live.Config, urlsCSV, schedule string, doCheck bool, convergence time.Duration, gate bool) error {
	cfg = cfg.Normalized()
	wall := cfg.Sim.Duration
	var (
		free      *live.FreeDriver
		fleetURLs []string
		target    *chaos.FleetTarget
	)
	if urlsCSV != "" {
		if schedule != "" {
			return fmt.Errorf("-chaos needs the in-process fleet (radar-load must own the node lifecycles to kill them); drop -urls")
		}
		fleetURLs = strings.Split(urlsCSV, ",")
		d, err := live.NewFreeDriver(cfg, fleetURLs)
		if err != nil {
			return err
		}
		free = d
	} else {
		h, err := livetest.New(cfg)
		if err != nil {
			return err
		}
		defer h.Close()
		free = h.Free
		fleetURLs = h.Fleet.URLs()
		if schedule != "" {
			target = chaos.NewFleetTarget(h.Fleet, free.SetLatency)
			defer target.Close()
		}
	}

	routes := routing.New(cfg.Sim.Topo)
	redirectors := live.RedirectorLocations(routes, cfg.Sim.NumRedirectors)

	var checker *check.Checker
	stopCheck := func() {}
	if doCheck {
		// Judge steady-state maintenance, not the boot transient: wait for
		// the self-scheduled placement passes to finish the initial floor
		// repair before the first scrape.
		if err := awaitFloor(ctx, fleetURLs, redirectors); err != nil {
			return err
		}
		checker = check.New(check.Config{
			URLs:        fleetURLs,
			Redirectors: redirectors,
			Convergence: convergence,
		})
		checkCtx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			checker.Run(checkCtx)
		}()
		stopCheck = func() { cancel(); <-done }
	}

	chaosDone := make(chan error, 1)
	var ctl *chaos.Controller
	if schedule != "" {
		plan, err := chaos.Plan(schedule, cfg.Sim.Topo, wall, rand.New(rand.NewSource(cfg.Sim.Seed)))
		if err != nil {
			return err
		}
		var obs chaos.Observer
		if checker != nil {
			obs = checker
		}
		ctl = chaos.NewController(target, plan, obs)
		go func() { chaosDone <- ctl.Run(ctx, time.Now()) }()
	} else {
		chaosDone <- nil
	}

	start := time.Now()
	runErr := free.Run(ctx, wall)
	wallTook := time.Since(start).Round(time.Millisecond)
	chaosErr := <-chaosDone
	stopCheck()
	if runErr != nil {
		return runErr
	}
	if chaosErr != nil {
		return fmt.Errorf("chaos: %w", chaosErr)
	}

	res := free.Results(free.Census())
	if err := report.Summary(res).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nfree run: %d served, %d failed, %d timed out (wall time %v)\n",
		res.TotalServed, res.FailedRequests, res.TimedOutRequests, wallTook)
	if ctl != nil {
		fmt.Printf("chaos: %d actions applied\n", len(ctl.Applied()))
		for _, a := range ctl.Applied() {
			fmt.Printf("  %s\n", a)
		}
	}

	if checker != nil {
		checker.CheckFailures(free.Failures())
		rep := checker.Report()
		fmt.Printf("invariants: %s\n", rep)
		if !rep.OK() {
			return fmt.Errorf("invariant check: %d violations", len(rep.Violations))
		}
	}
	if gate && res.FailedRequests > 0 {
		return fmt.Errorf("gate: %d failed requests (want zero)", res.FailedRequests)
	}
	return nil
}

// awaitFloor polls the redirectors' censuses until no object sits below
// the replica floor (or with zero replicas), so invariant checking starts
// from a converged fleet.
func awaitFloor(ctx context.Context, urls []string, redirectors []topology.NodeID) error {
	client := &http.Client{Timeout: 2 * time.Second}
	defer client.CloseIdleConnections()
	deadline := time.Now().Add(floorWaitTimeout)
	for {
		settled := true
		for _, loc := range redirectors {
			res, err := client.Get(urls[loc] + live.PathCensus)
			if err != nil {
				settled = false
				continue
			}
			data, err := io.ReadAll(res.Body)
			res.Body.Close()
			if err != nil || res.StatusCode != http.StatusOK {
				settled = false
				continue
			}
			var rep live.CensusReply
			if live.Decode(data, &rep) != nil || rep.BelowFloor > 0 || rep.Zero > 0 {
				settled = false
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not repair the initial replica-floor deficit within %v", floorWaitTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// buildConfig resolves a scenario into a live fleet configuration with the
// command-line overrides applied. radar-node uses the identical resolution,
// so a driver and an externally launched fleet agree on every parameter.
func buildConfig(name string, duration time.Duration, rps float64, seed int64, inflight int, freeRunning bool) (live.Config, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return live.Config{}, fmt.Errorf("unknown scenario %q (see -list)", name)
	}
	simCfg, err := sc.Config()
	if err != nil {
		return live.Config{}, err
	}
	if duration > 0 {
		simCfg.Duration = duration
	}
	if rps > 0 {
		simCfg.NodeRequestRPS = rps
	}
	if seed != 0 {
		simCfg.Seed = seed
	}
	cfg := live.Config{Sim: simCfg, MaxInflightCreates: inflight, FreeRunning: freeRunning}
	if err := cfg.Validate(); err != nil {
		return live.Config{}, err
	}
	return cfg, nil
}
