// Command radar-load replays a scenario's workload against a live fleet
// over real HTTP: the load generator paces the simulator's exact event
// schedule, asks each object's redirector for a 302, follows it to the
// chosen replica host, and reports completions back — collecting the same
// metrics schema as a simulation run.
//
// By default it stands up an in-process loopback fleet (one HTTP listener
// per topology node) and drives it; with -urls it drives an externally
// started fleet of radar-node processes instead, which must have been
// launched with the same scenario and overrides.
//
// Examples:
//
//	radar-load -list
//	radar-load -scenario steady-state-baseline -duration 2m -rps 10
//	radar-load -scenario steady-state-baseline -duration 2m -rps 10 -gate-zero-failed
//	radar-load -scenario steady-state-baseline -urls http://127.0.0.1:8300,http://127.0.0.1:8301,...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"radar/internal/live"
	"radar/internal/live/livetest"
	"radar/internal/report"
	"radar/internal/scenario"
	"radar/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-load:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name       = flag.String("scenario", "steady-state-baseline", "scenario to replay (see -list)")
		list       = flag.Bool("list", false, "list the scenario corpus and exit")
		duration   = flag.Duration("duration", 0, "override the scenario's virtual duration (0 = keep)")
		rps        = flag.Float64("rps", 0, "override the per-gateway request rate (0 = keep)")
		seed       = flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
		urls       = flag.String("urls", "", "comma-separated radar-node base URLs (empty = in-process loopback fleet)")
		inflight   = flag.Int("max-inflight-creates", 0, "per-node CreateObj concurrency limit (0 = default)")
		gateFailed = flag.Bool("gate-zero-failed", false, "exit non-zero if any request failed or any node crashed")
	)
	flag.Parse()

	if *list {
		for _, n := range scenario.Names() {
			sc, _ := scenario.ByName(n)
			fmt.Printf("%-40s %s\n", n, sc.Description)
		}
		return nil
	}

	cfg, err := buildConfig(*name, *duration, *rps, *seed, *inflight)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var res *sim.Results
	if *urls != "" {
		fleet := strings.Split(*urls, ",")
		d, err := live.NewDriver(cfg, fleet)
		if err != nil {
			return err
		}
		res, err = d.Run(ctx)
		if err != nil {
			return err
		}
	} else {
		h, err := livetest.New(cfg)
		if err != nil {
			return err
		}
		defer h.Close()
		res, err = h.Run(ctx)
		if err != nil {
			return err
		}
	}
	wall := time.Since(start).Round(time.Millisecond)

	if err := report.Summary(res).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nlive replay: %d served, %d failed, %d dropped choices, %d timed out, %d crashes (wall time %v)\n",
		res.TotalServed, res.FailedRequests, res.DroppedChoices, res.TimedOutRequests, res.Failures, wall)

	if *gateFailed {
		if res.FailedRequests > 0 || res.DroppedChoices > 0 || res.Failures > 0 {
			return fmt.Errorf("gate: %d failed requests, %d dropped choices, %d crashes (want all zero)",
				res.FailedRequests, res.DroppedChoices, res.Failures)
		}
		fmt.Println("gate: zero failed requests")
	}
	return nil
}

// buildConfig resolves a scenario into a live fleet configuration with the
// command-line overrides applied. radar-node uses the identical resolution,
// so a driver and an externally launched fleet agree on every parameter.
func buildConfig(name string, duration time.Duration, rps float64, seed int64, inflight int) (live.Config, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return live.Config{}, fmt.Errorf("unknown scenario %q (see -list)", name)
	}
	simCfg, err := sc.Config()
	if err != nil {
		return live.Config{}, err
	}
	if duration > 0 {
		simCfg.Duration = duration
	}
	if rps > 0 {
		simCfg.NodeRequestRPS = rps
	}
	if seed != 0 {
		simCfg.Seed = seed
	}
	cfg := live.Config{Sim: simCfg, MaxInflightCreates: inflight}
	if err := cfg.Validate(); err != nil {
		return live.Config{}, err
	}
	return cfg, nil
}
