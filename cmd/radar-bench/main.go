// Command radar-bench measures the library's end-to-end hot paths and
// writes JSON artifacts that track them against recorded pre-optimization
// baselines.
//
// Three modes:
//
//	go run ./cmd/radar-bench -o BENCH_run.json
//	    one full default-scale Zipf run (Table 1 parameters, 40 simulated
//	    minutes, ~5 million requests)
//
//	go run ./cmd/radar-bench -mode=suite -o BENCH_suite.json
//	    a 16-run multi-seed experiment suite (2 seeds x 8 quick-scale
//	    runs) executed at several parallelism levels, exercising the
//	    shared substrate cache and the parallel experiment engine
//
//	go run ./cmd/radar-bench -mode=bigrun -o BENCH_bigrun.json
//	    one oversized run (transit-stub backbone, 256 hosts, 100,000
//	    objects) swept across shard counts 1/2/4/8 of the intra-run
//	    sharded engine; the artifact records wall/allocs/peak-heap per
//	    level plus an FNV-64a hash of each level's full Results, and the
//	    tool fails if any hash diverges (bit-identity is the contract)
//
// Wall time is the best of -runs attempts (allocation counts are
// deterministic across runs; wall time is not). Suite mode also records
// the sampled peak heap and an FNV-64a hash of the rendered aggregate
// table, so artifact equivalence with the baseline is machine-checkable.
// EXPERIMENTS.md documents how to regenerate and interpret the artifacts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"radar"
	"radar/internal/experiments"
	"radar/internal/object"
	"radar/internal/sim"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Pre-optimization baseline for -mode=run, measured at commit e306ca4
// (before the pooled event queue, flattened routing tables and dense
// per-object state) with this same command's methodology on the default
// Zipf run.
const (
	baselineCommit = "e306ca4"
	baselineWallNS = int64(13_017_516_293)
	baselineAllocs = int64(27_315_823)
	baselineBytes  = int64(1_007_280_232)
)

// Pre-substrate baseline for -mode=suite, measured at commit e1e5b61
// (before the shared substrate cache, the deferred per-server completion
// FIFOs and the int32 counter blocks) with this same command's
// methodology: 16-run multi-seed quick suite, parallelism 4, single
// attempt, on an otherwise idle machine.
const (
	suiteBaselineCommit    = "e1e5b61"
	suiteBaselineWallNS    = int64(29_418_021_914)
	suiteBaselineAllocs    = int64(841_460)
	suiteBaselineBytes     = int64(219_300_440)
	suiteBaselinePeakHeap  = int64(64_057_632)
	suiteBaselineTableHash = "69d09600928e18d3"
)

// measurement is one run's cost.
type measurement struct {
	Commit string `json:"commit,omitempty"`
	WallNS int64  `json:"wall_ns"`
	Wall   string `json:"wall"`
	Allocs int64  `json:"allocs"`
	Bytes  int64  `json:"bytes"`
}

// artifact is the BENCH_run.json schema.
type artifact struct {
	GeneratedBy string `json:"generated_by"`
	Workload    string `json:"workload"`
	Objects     int    `json:"objects"`
	Duration    string `json:"simulated_duration"`
	Seed        int64  `json:"seed"`
	Runs        int    `json:"runs"`
	TotalServed int64  `json:"total_served"`

	Baseline measurement `json:"baseline"`
	Current  measurement `json:"current"`

	WallReductionPct   float64 `json:"wall_reduction_pct"`
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	BytesReductionPct  float64 `json:"bytes_reduction_pct"`
}

// suiteMeasurement is one parallelism level's cost in suite mode.
type suiteMeasurement struct {
	Commit      string `json:"commit,omitempty"`
	Parallelism int    `json:"parallelism"`
	WallNS      int64  `json:"wall_ns"`
	Wall        string `json:"wall"`
	Allocs      int64  `json:"allocs"`
	Bytes       int64  `json:"bytes"`
	PeakHeap    int64  `json:"peak_heap_bytes"`
	TableHash   string `json:"table_hash_fnv64a"`
}

// suiteArtifact is the BENCH_suite.json schema.
type suiteArtifact struct {
	GeneratedBy  string  `json:"generated_by"`
	Suite        string  `json:"suite"`
	Seeds        []int64 `json:"seeds"`
	RunsPerLevel int     `json:"runs_per_level"`

	Baseline suiteMeasurement   `json:"baseline"`
	Levels   []suiteMeasurement `json:"levels"`
	Current  suiteMeasurement   `json:"current"` // the level matching the baseline's parallelism

	WallReductionPct     float64 `json:"wall_reduction_pct"`
	AllocsReductionPct   float64 `json:"allocs_reduction_pct"`
	BytesReductionPct    float64 `json:"bytes_reduction_pct"`
	PeakHeapReductionPct float64 `json:"peak_heap_reduction_pct"`
	// TableMatchesBaseline is true when the rendered aggregate table is
	// byte-identical (same FNV-64a hash) to the pre-substrate baseline's.
	TableMatchesBaseline bool `json:"table_matches_baseline"`
}

func main() {
	mode := flag.String("mode", "run", "benchmark mode: run (one default-scale run) | suite (16-run multi-seed suite) | bigrun (256-host shard sweep)")
	out := flag.String("o", "", "output path for the JSON artifact (default BENCH_<mode>.json)")
	runs := flag.Int("runs", 0, "attempts; wall time is the best, allocations the last (default 3 for run, 1 for suite and bigrun)")
	bigObjects := flag.Int("bigrun-objects", 100_000, "bigrun mode: hosted object count (lower it for smoke tests)")
	bigDuration := flag.Duration("bigrun-duration", 5*time.Minute, "bigrun mode: simulated time span")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measured work to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file before exit")
	flag.Parse()

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radar-bench:", err)
		os.Exit(1)
	}
	ok := false
	switch *mode {
	case "run":
		ok = runMode(orDefault(*out, "BENCH_run.json"), orDefaultInt(*runs, 3))
	case "suite":
		ok = suiteMode(orDefault(*out, "BENCH_suite.json"), orDefaultInt(*runs, 1))
	case "bigrun":
		ok = bigrunMode(orDefault(*out, "BENCH_bigrun.json"), orDefaultInt(*runs, 1), *bigObjects, *bigDuration)
	default:
		fmt.Fprintf(os.Stderr, "radar-bench: unknown mode %q (want run, suite or bigrun)\n", *mode)
	}
	stopProf()
	if !ok {
		os.Exit(1)
	}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func orDefaultInt(v, def int) int {
	if v < 1 {
		return def
	}
	return v
}

func runMode(out string, runs int) bool {
	cfg := radar.DefaultConfig(radar.Zipf)
	var (
		bestWall time.Duration
		allocs   int64
		bytes    int64
		served   int64
	)
	for i := 0; i < runs; i++ {
		wall, a, by, res, err := measureOnce(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "radar-bench:", err)
			return false
		}
		fmt.Fprintf(os.Stderr, "run %d/%d: %v, %d allocs, %d B\n", i+1, runs, wall.Round(time.Millisecond), a, by)
		if bestWall == 0 || wall < bestWall {
			bestWall = wall
		}
		allocs, bytes, served = a, by, res.Summary.TotalServed
	}

	art := artifact{
		GeneratedBy: "go run ./cmd/radar-bench",
		Workload:    string(cfg.Workload),
		Objects:     cfg.Objects,
		Duration:    cfg.Duration.String(),
		Seed:        cfg.Seed,
		Runs:        runs,
		TotalServed: served,
		Baseline: measurement{
			Commit: baselineCommit,
			WallNS: baselineWallNS,
			Wall:   time.Duration(baselineWallNS).Round(time.Millisecond).String(),
			Allocs: baselineAllocs,
			Bytes:  baselineBytes,
		},
		Current: measurement{
			WallNS: int64(bestWall),
			Wall:   bestWall.Round(time.Millisecond).String(),
			Allocs: allocs,
			Bytes:  bytes,
		},
		WallReductionPct:   reduction(baselineWallNS, int64(bestWall)),
		AllocsReductionPct: reduction(baselineAllocs, allocs),
		BytesReductionPct:  reduction(baselineBytes, bytes),
	}
	if !writeArtifact(out, art) {
		return false
	}
	fmt.Printf("wrote %s: wall %s (-%.1f%%), allocs %d (-%.1f%%), bytes %d (-%.1f%%)\n",
		out, art.Current.Wall, art.WallReductionPct, allocs, art.AllocsReductionPct, bytes, art.BytesReductionPct)
	return true
}

// measureOnce executes one run and returns its wall time and the
// process's allocation delta across it.
func measureOnce(cfg radar.Config) (time.Duration, int64, int64, *radar.Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := radar.Run(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return wall, int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc), res, nil
}

// suiteSeeds are the multi-seed suite's seeds: 2 seeds x 8 runs = 16 runs.
var suiteSeeds = []int64{1, 2}

func suiteMode(out string, runs int) bool {
	levels := suiteLevels()
	art := suiteArtifact{
		GeneratedBy:  "go run ./cmd/radar-bench -mode=suite",
		Suite:        "multi-seed quick suite (2 seeds x 8 runs)",
		Seeds:        suiteSeeds,
		RunsPerLevel: runs,
		Baseline: suiteMeasurement{
			Commit:      suiteBaselineCommit,
			Parallelism: 4,
			WallNS:      suiteBaselineWallNS,
			Wall:        time.Duration(suiteBaselineWallNS).Round(time.Millisecond).String(),
			Allocs:      suiteBaselineAllocs,
			Bytes:       suiteBaselineBytes,
			PeakHeap:    suiteBaselinePeakHeap,
			TableHash:   suiteBaselineTableHash,
		},
	}
	for _, p := range levels {
		var best suiteMeasurement
		for i := 0; i < runs; i++ {
			m, err := measureSuiteOnce(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "radar-bench:", err)
				return false
			}
			fmt.Fprintf(os.Stderr, "suite p=%d %d/%d: %v, %d allocs, %d B, peak %d B, table %s\n",
				p, i+1, runs, time.Duration(m.WallNS).Round(time.Millisecond), m.Allocs, m.Bytes, m.PeakHeap, m.TableHash)
			if best.WallNS == 0 || m.WallNS < best.WallNS {
				best = m
			}
		}
		art.Levels = append(art.Levels, best)
		if best.Parallelism == art.Baseline.Parallelism {
			art.Current = best
		}
	}
	if art.Current.WallNS == 0 {
		// No level matched the baseline's parallelism (GOMAXPROCS-capped
		// sweep); compare against the highest level measured.
		art.Current = art.Levels[len(art.Levels)-1]
	}
	art.WallReductionPct = reduction(art.Baseline.WallNS, art.Current.WallNS)
	art.AllocsReductionPct = reduction(art.Baseline.Allocs, art.Current.Allocs)
	art.BytesReductionPct = reduction(art.Baseline.Bytes, art.Current.Bytes)
	art.PeakHeapReductionPct = reduction(art.Baseline.PeakHeap, art.Current.PeakHeap)
	art.TableMatchesBaseline = art.Current.TableHash == art.Baseline.TableHash
	if !writeArtifact(out, art) {
		return false
	}
	fmt.Printf("wrote %s: p=%d wall %s (-%.1f%%), allocs %d (-%.1f%%), bytes %d (-%.1f%%), peak heap %d B (-%.1f%%), table match %v\n",
		out, art.Current.Parallelism, art.Current.Wall, art.WallReductionPct,
		art.Current.Allocs, art.AllocsReductionPct, art.Current.Bytes, art.BytesReductionPct,
		art.Current.PeakHeap, art.PeakHeapReductionPct, art.TableMatchesBaseline)
	return true
}

// suiteLevels returns the parallelism sweep: 1, 2, 4 and GOMAXPROCS,
// deduplicated and sorted. The full sweep always includes the baseline's
// level (4) so reductions compare like with like even on small machines.
func suiteLevels() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	levels := make([]int, 0, len(set))
	for p := range set {
		levels = append(levels, p)
	}
	sort.Ints(levels)
	return levels
}

// measureSuiteOnce executes the 16-run multi-seed suite at parallelism p,
// returning wall time, the process's allocation delta, the sampled peak
// heap and the FNV-64a hash of the rendered aggregate table.
func measureSuiteOnce(p int) (suiteMeasurement, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	stopSampler := startHeapSampler()

	opts := experiments.Options{Seed: 1, Quick: true, Parallelism: p}
	start := time.Now()
	msr, err := experiments.RunMultiSeed(opts, suiteSeeds, false)
	wall := time.Since(start)
	peakHeap := stopSampler()
	runtime.ReadMemStats(&after)
	if err != nil {
		return suiteMeasurement{}, err
	}

	var buf bytes.Buffer
	if err := msr.Table().Render(&buf); err != nil {
		return suiteMeasurement{}, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())

	return suiteMeasurement{
		Parallelism: p,
		WallNS:      int64(wall),
		Wall:        wall.Round(time.Millisecond).String(),
		Allocs:      int64(after.Mallocs - before.Mallocs),
		Bytes:       int64(after.TotalAlloc - before.TotalAlloc),
		PeakHeap:    peakHeap,
		TableHash:   fmt.Sprintf("%016x", h.Sum64()),
	}, nil
}

// startHeapSampler polls HeapAlloc in the background; the returned stop
// function ends the sampler and reports the peak it saw.
func startHeapSampler() func() int64 {
	stop := make(chan struct{})
	done := make(chan struct{})
	var peak atomic.Uint64
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	return func() int64 {
		close(stop)
		<-done
		return int64(peak.Load())
	}
}

// bigrunShards is the shard sweep for -mode=bigrun.
var bigrunShards = []int{1, 2, 4, 8}

// bigrunMeasurement is one shard level's cost in bigrun mode.
type bigrunMeasurement struct {
	Shards   int    `json:"shards"`
	WallNS   int64  `json:"wall_ns"`
	Wall     string `json:"wall"`
	Allocs   int64  `json:"allocs"`
	Bytes    int64  `json:"bytes"`
	PeakHeap int64  `json:"peak_heap_bytes"`
	// ResultHash is the FNV-64a hash of the level's full JSON-marshaled
	// Results; the sharded engine's contract is that it is identical at
	// every shard count.
	ResultHash string `json:"result_hash_fnv64a"`
}

// bigrunArtifact is the BENCH_bigrun.json schema.
type bigrunArtifact struct {
	GeneratedBy  string `json:"generated_by"`
	Topology     string `json:"topology"`
	Hosts        int    `json:"hosts"`
	Objects      int    `json:"objects"`
	Duration     string `json:"simulated_duration"`
	Seed         int64  `json:"seed"`
	RunsPerLevel int    `json:"runs_per_level"`
	// GOMAXPROCS is recorded because the shard workers can only run
	// concurrently up to this many OS threads; on a single-core machine
	// the sweep measures barrier/merge overhead, not speedup.
	GOMAXPROCS  int   `json:"gomaxprocs"`
	TotalServed int64 `json:"total_served"`

	Levels []bigrunMeasurement `json:"levels"`
	// HashesMatch is true when every level produced bit-identical Results
	// (same FNV-64a hash). The tool exits non-zero when it is false.
	HashesMatch bool `json:"hashes_match"`
	// SpeedupShards4 is serial wall time over shards=4 wall time.
	SpeedupShards4 float64 `json:"speedup_shards4_vs_serial"`
	Note           string  `json:"note,omitempty"`
}

// bigrunConfig builds the oversized run: a 4-domain transit-stub backbone
// (4 hubs x 15 stubs per domain = 256 hosts) under a Zipf demand over an
// outsized object universe, with everything else at Table 1 defaults.
func bigrunConfig(objects int, duration time.Duration, shards int) (sim.Config, error) {
	u := object.Universe{Count: objects, SizeBytes: 12 << 10}
	gen, err := workload.NewZipf(u)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(gen, 1)
	cfg.Topo = topology.TransitStub(4, 4, 15)
	cfg.Universe = u
	cfg.Duration = duration
	cfg.Shards = shards
	return cfg, nil
}

func bigrunMode(out string, runs, objects int, duration time.Duration) bool {
	art := bigrunArtifact{
		GeneratedBy:  "go run ./cmd/radar-bench -mode=bigrun",
		Topology:     "transit-stub(4 domains, 4 hubs, 15 stubs/hub)",
		Hosts:        topology.TransitStub(4, 4, 15).NumNodes(),
		Objects:      objects,
		Duration:     duration.String(),
		Seed:         1,
		RunsPerLevel: runs,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}
	for _, shards := range bigrunShards {
		var best bigrunMeasurement
		for i := 0; i < runs; i++ {
			m, served, err := measureBigrunOnce(objects, duration, shards)
			if err != nil {
				fmt.Fprintln(os.Stderr, "radar-bench:", err)
				return false
			}
			fmt.Fprintf(os.Stderr, "bigrun shards=%d %d/%d: %v, %d allocs, %d B, peak %d B, results %s\n",
				shards, i+1, runs, time.Duration(m.WallNS).Round(time.Millisecond), m.Allocs, m.Bytes, m.PeakHeap, m.ResultHash)
			if best.WallNS == 0 || m.WallNS < best.WallNS {
				best = m
			}
			art.TotalServed = served
		}
		art.Levels = append(art.Levels, best)
	}

	art.HashesMatch = true
	for _, l := range art.Levels {
		if l.ResultHash != art.Levels[0].ResultHash {
			art.HashesMatch = false
		}
	}
	for _, l := range art.Levels {
		if l.Shards == 4 && l.WallNS > 0 {
			art.SpeedupShards4 = float64(art.Levels[0].WallNS) / float64(l.WallNS)
		}
	}
	if art.GOMAXPROCS < 2 {
		art.Note = "single-core environment: shard workers serialize onto one OS thread, so wall times measure sharding overhead, not speedup"
	}
	if !writeArtifact(out, art) {
		return false
	}
	fmt.Printf("wrote %s: %d hosts, %d objects, shards 1..8, hashes match %v, shards=4 speedup %.2fx\n",
		out, art.Hosts, art.Objects, art.HashesMatch, art.SpeedupShards4)
	if !art.HashesMatch {
		fmt.Fprintln(os.Stderr, "radar-bench: FAIL: result hashes diverge across shard levels")
		return false
	}
	return true
}

// measureBigrunOnce executes one oversized run at the given shard count
// and returns its cost plus the FNV-64a hash of its full Results.
func measureBigrunOnce(objects int, duration time.Duration, shards int) (bigrunMeasurement, int64, error) {
	cfg, err := bigrunConfig(objects, duration, shards)
	if err != nil {
		return bigrunMeasurement{}, 0, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return bigrunMeasurement{}, 0, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	stopSampler := startHeapSampler()

	start := time.Now()
	res, err := s.Run()
	wall := time.Since(start)
	peakHeap := stopSampler()
	runtime.ReadMemStats(&after)
	if err != nil {
		return bigrunMeasurement{}, 0, err
	}
	if res.InvariantsError != nil {
		return bigrunMeasurement{}, 0, fmt.Errorf("invariants violated: %w", res.InvariantsError)
	}

	data, err := json.Marshal(res)
	if err != nil {
		return bigrunMeasurement{}, 0, err
	}
	h := fnv.New64a()
	h.Write(data)

	return bigrunMeasurement{
		Shards:     shards,
		WallNS:     int64(wall),
		Wall:       wall.Round(time.Millisecond).String(),
		Allocs:     int64(after.Mallocs - before.Mallocs),
		Bytes:      int64(after.TotalAlloc - before.TotalAlloc),
		PeakHeap:   peakHeap,
		ResultHash: fmt.Sprintf("%016x", h.Sum64()),
	}, res.TotalServed, nil
}

func writeArtifact(out string, art any) bool {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "radar-bench:", err)
		return false
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "radar-bench:", err)
		return false
	}
	return true
}

// reduction returns the percentage drop from base to cur.
func reduction(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-cur) / float64(base)
}
