// Command radar-bench measures the library's end-to-end hot path — one
// full default-scale Zipf run (Table 1 parameters, 40 simulated
// minutes, ~5 million requests) — and writes the result, together with
// the recorded pre-optimization baseline and the reduction percentages,
// to a JSON artifact (BENCH_run.json by default):
//
//	go run ./cmd/radar-bench -o BENCH_run.json
//
// Wall time is the best of -runs attempts (allocation counts are
// deterministic across runs; wall time is not). EXPERIMENTS.md
// documents how to regenerate and interpret the artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"radar"
)

// Pre-optimization baseline, measured at commit e306ca4 (before the
// pooled event queue, flattened routing tables and dense per-object
// state) with this same command's methodology on the default Zipf run.
const (
	baselineCommit = "e306ca4"
	baselineWallNS = int64(13_017_516_293)
	baselineAllocs = int64(27_315_823)
	baselineBytes  = int64(1_007_280_232)
)

// measurement is one run's cost.
type measurement struct {
	Commit string `json:"commit,omitempty"`
	WallNS int64  `json:"wall_ns"`
	Wall   string `json:"wall"`
	Allocs int64  `json:"allocs"`
	Bytes  int64  `json:"bytes"`
}

// artifact is the BENCH_run.json schema.
type artifact struct {
	GeneratedBy string `json:"generated_by"`
	Workload    string `json:"workload"`
	Objects     int    `json:"objects"`
	Duration    string `json:"simulated_duration"`
	Seed        int64  `json:"seed"`
	Runs        int    `json:"runs"`
	TotalServed int64  `json:"total_served"`

	Baseline measurement `json:"baseline"`
	Current  measurement `json:"current"`

	WallReductionPct   float64 `json:"wall_reduction_pct"`
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	BytesReductionPct  float64 `json:"bytes_reduction_pct"`
}

func main() {
	out := flag.String("o", "BENCH_run.json", "output path for the JSON artifact")
	runs := flag.Int("runs", 3, "attempts; wall time is the best, allocations the last")
	flag.Parse()
	if *runs < 1 {
		*runs = 1
	}

	cfg := radar.DefaultConfig(radar.Zipf)
	var (
		bestWall time.Duration
		allocs   int64
		bytes    int64
		served   int64
	)
	for i := 0; i < *runs; i++ {
		wall, a, by, res, err := measureOnce(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "radar-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run %d/%d: %v, %d allocs, %d B\n", i+1, *runs, wall.Round(time.Millisecond), a, by)
		if bestWall == 0 || wall < bestWall {
			bestWall = wall
		}
		allocs, bytes, served = a, by, res.Summary.TotalServed
	}

	art := artifact{
		GeneratedBy: "go run ./cmd/radar-bench",
		Workload:    string(cfg.Workload),
		Objects:     cfg.Objects,
		Duration:    cfg.Duration.String(),
		Seed:        cfg.Seed,
		Runs:        *runs,
		TotalServed: served,
		Baseline: measurement{
			Commit: baselineCommit,
			WallNS: baselineWallNS,
			Wall:   time.Duration(baselineWallNS).Round(time.Millisecond).String(),
			Allocs: baselineAllocs,
			Bytes:  baselineBytes,
		},
		Current: measurement{
			WallNS: int64(bestWall),
			Wall:   bestWall.Round(time.Millisecond).String(),
			Allocs: allocs,
			Bytes:  bytes,
		},
		WallReductionPct:   reduction(baselineWallNS, int64(bestWall)),
		AllocsReductionPct: reduction(baselineAllocs, allocs),
		BytesReductionPct:  reduction(baselineBytes, bytes),
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "radar-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "radar-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: wall %s (-%.1f%%), allocs %d (-%.1f%%), bytes %d (-%.1f%%)\n",
		*out, art.Current.Wall, art.WallReductionPct, allocs, art.AllocsReductionPct, bytes, art.BytesReductionPct)
}

// measureOnce executes one run and returns its wall time and the
// process's allocation delta across it.
func measureOnce(cfg radar.Config) (time.Duration, int64, int64, *radar.Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := radar.Run(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return wall, int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc), res, nil
}

// reduction returns the percentage drop from base to cur.
func reduction(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-cur) / float64(base)
}
