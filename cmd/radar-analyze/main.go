// Command radar-analyze summarizes a JSONL placement-event trace produced
// by radar-sim -trace (or any radar.Config.TraceWriter).
//
// Examples:
//
//	radar-sim -workload hot-sites -trace events.jsonl
//	radar-analyze events.jsonl
//	radar-analyze -top 5 events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"radar/internal/topology"
	"radar/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	top := flag.Int("top", 10, "how many hosts/objects to list")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: radar-analyze [-top N] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("events: %d total\n", len(events))
	fmt.Printf("  migrations:   %d\n", s.Migrations)
	fmt.Printf("  replications: %d\n", s.Replications)
	fmt.Printf("  drops:        %d\n", s.Drops)
	fmt.Printf("  refusals:     %d\n", s.Refusals)
	fmt.Printf("  geo moves:    %d\n", s.GeoMoves)
	fmt.Printf("  load moves:   %d\n", s.LoadMoves)
	if len(events) > 0 {
		fmt.Printf("  time span:    %.0fs .. %.0fs\n", events[0].T, events[len(events)-1].T)
	}

	names := topology.UUNET()
	fmt.Printf("\nbusiest hosts (by initiated events):\n")
	type kv struct {
		id topology.NodeID
		n  int
	}
	var hosts []kv
	for id, n := range s.ByHost {
		hosts = append(hosts, kv{id, n})
	}
	sort.Slice(hosts, func(i, j int) bool {
		if hosts[i].n != hosts[j].n {
			return hosts[i].n > hosts[j].n
		}
		return hosts[i].id < hosts[j].id
	})
	for i, h := range hosts {
		if i >= *top {
			break
		}
		name := fmt.Sprintf("node %d", h.id)
		if int(h.id) < names.NumNodes() {
			name = names.Node(h.id).Name
		}
		fmt.Printf("  %-16s %d\n", name, h.n)
	}

	fmt.Printf("\nmost relocated objects:\n")
	type ov struct {
		id int
		n  int
	}
	var objs []ov
	for id, n := range s.ByObject {
		objs = append(objs, ov{int(id), n})
	}
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].n != objs[j].n {
			return objs[i].n > objs[j].n
		}
		return objs[i].id < objs[j].id
	})
	for i, o := range objs {
		if i >= *top {
			break
		}
		fmt.Printf("  object %-8d %d\n", o.id, o.n)
	}
	return nil
}
