package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts a CPU profile and/or arms a heap profile according
// to the -cpuprofile/-memprofile flags (empty path = disabled). The
// returned stop function flushes both; call it exactly once, after the
// measured work, before exiting.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
