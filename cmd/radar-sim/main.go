// Command radar-sim runs a hosting-service simulation with the paper's
// Table 1 defaults and prints a summary table, optionally dumping the
// per-bucket series as CSV. With -runs > 1 the same configuration is
// executed across consecutive seeds concurrently on the experiments
// engine and each seed's headline metrics are printed; per-seed results
// are bit-identical to the corresponding single run.
//
// Examples:
//
//	radar-sim -workload hot-sites
//	radar-sim -workload zipf -static
//	radar-sim -workload regional -duration 60m -seed 7 -csv out/
//	radar-sim -workload hot-pages -policy round-robin -high-load
//	radar-sim -workload zipf -runs 8 -parallelism 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"radar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadName = flag.String("workload", "zipf", "workload: zipf | hot-sites | hot-pages | regional | uniform")
		seed         = flag.Int64("seed", 1, "random seed (same seed = identical run)")
		objects      = flag.Int("objects", 10000, "number of hosted objects")
		duration     = flag.Duration("duration", 40*time.Minute, "simulated time span")
		static       = flag.Bool("static", false, "disable dynamic placement (no-replication baseline)")
		highLoad     = flag.Bool("high-load", false, "use the Figure 9 watermarks (hw=50, lw=40)")
		policy       = flag.String("policy", "paper", "request distribution: paper | round-robin | closest")
		consistency  = flag.String("consistency", "none", "consistency regime: none | mixed")
		redirectors  = flag.Int("redirectors", 1, "number of hash-partitioned redirectors")
		poisson      = flag.Bool("poisson", false, "Poisson request arrivals instead of constant spacing")
		contention   = flag.Bool("contention", false, "FIFO link contention instead of fixed per-hop cost")
		shards       = flag.Int("shards", 0, "serve-plane shards inside each run, bit-identical results (0/1 = serial, -1 = one per region)")
		shardQuantum = flag.Duration("shard-quantum", 0, "max virtual time between shard barriers (0 = bound by global events only)")
		csvDir       = flag.String("csv", "", "directory to write per-bucket series CSVs")
		traceFile    = flag.String("trace", "", "file to write a JSONL placement-event trace")
		runs         = flag.Int("runs", 1, "number of consecutive-seed runs (run concurrently when > 1)")
		parallelism  = flag.Int("parallelism", 0, "concurrent simulations for -runs (0 = GOMAXPROCS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file before exit")
		faults       = flag.String("faults", "", `fault schedule, e.g. "crash:9@3m+5m; drop:0.2; dup:0.05; cdelay:50ms"`)
		replicaFloor = flag.Int("replica-floor", 0, "minimum replicas kept per object (repair replication; 0/1 = paper behavior)")
		availWeight  = flag.Float64("avail-weight", 0, "availability-aware placement weight in [0,1] (0 = paper behavior)")
		ctrlRetries  = flag.Int("ctrl-retries", 0, "control-RPC retry budget under message faults (0 = default 3)")
		ctrlTimeout  = flag.Duration("ctrl-timeout", 0, "per-attempt control-RPC timeout under message faults (0 = default 1s)")
		storeSpec    = flag.String("store", "", `replica-storage stack, e.g. "cache(mem:64,disk:5ms)" or "mirror(faulty(mem),mem)" (empty = in-memory)`)
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := radar.DefaultConfig(radar.Workload(*workloadName))
	cfg.Seed = *seed
	cfg.Objects = *objects
	cfg.Duration = *duration
	cfg.Static = *static
	cfg.HighLoad = *highLoad
	cfg.Placement.Policy = radar.Policy(*policy)
	cfg.Consistency = radar.Consistency(*consistency)
	cfg.NumRedirectors = *redirectors
	cfg.PoissonArrivals = *poisson
	cfg.LinkContention = *contention
	cfg.Shards = *shards
	cfg.ShardQuantum = *shardQuantum
	cfg.Faults.FaultSchedule = *faults
	cfg.Faults.ReplicaFloor = *replicaFloor
	cfg.Placement.AvailabilityWeight = *availWeight
	cfg.Ctrl.CtrlRetries = *ctrlRetries
	cfg.Ctrl.CtrlTimeout = *ctrlTimeout
	cfg.Storage.Store = *storeSpec
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceWriter = f
	}

	if *runs > 1 {
		return runMany(cfg, *runs, *parallelism)
	}

	start := time.Now()
	res, err := radar.Run(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n(wall time %v)\n", time.Since(start).Round(time.Millisecond))

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", *csvDir)
	}
	return nil
}

// runMany executes the configuration across n consecutive seeds on the
// parallel engine and prints each seed's headline metrics.
func runMany(cfg radar.Config, n, parallelism int) error {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	start := time.Now()
	results, err := radar.RunSeeds(cfg, seeds, parallelism)
	if err != nil {
		return err
	}
	fmt.Printf("%6s  %14s  %12s  %12s  %10s\n",
		"seed", "bw eq (B·h/s)", "latency (s)", "replicas", "served")
	for i, res := range results {
		s := res.Summary
		fmt.Printf("%6d  %14.0f  %12.3f  %12.2f  %10d\n",
			seeds[i], s.BandwidthEquilibrium, s.LatencyEquilibrium, s.AvgReplicas, s.TotalServed)
	}
	fmt.Printf("\n(%d runs, wall time %v)\n", n, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeCSVs(dir string, res *radar.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	series := map[string][]radar.Point{
		"bandwidth.csv": res.Bandwidth,
		"latency.csv":   res.Latency,
		"overhead.csv":  res.OverheadPct,
		"maxload.csv":   res.MaxLoad,
	}
	for name, pts := range series {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "time_s,value")
		for _, p := range pts {
			fmt.Fprintf(f, "%.1f,%g\n", p.T.Seconds(), p.V)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "hostload.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "time_s,actual,lower,upper")
	for _, s := range res.HostLoad {
		fmt.Fprintf(f, "%.1f,%g,%g,%g\n", s.T.Seconds(), s.Actual, s.Lower, s.Upper)
	}
	return f.Close()
}
