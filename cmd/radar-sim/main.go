// Command radar-sim runs a single hosting-service simulation with the
// paper's Table 1 defaults and prints a summary table, optionally dumping
// the per-bucket series as CSV.
//
// Examples:
//
//	radar-sim -workload hot-sites
//	radar-sim -workload zipf -static
//	radar-sim -workload regional -duration 60m -seed 7 -csv out/
//	radar-sim -workload hot-pages -policy round-robin -high-load
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"radar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadName = flag.String("workload", "zipf", "workload: zipf | hot-sites | hot-pages | regional | uniform")
		seed         = flag.Int64("seed", 1, "random seed (same seed = identical run)")
		objects      = flag.Int("objects", 10000, "number of hosted objects")
		duration     = flag.Duration("duration", 40*time.Minute, "simulated time span")
		static       = flag.Bool("static", false, "disable dynamic placement (no-replication baseline)")
		highLoad     = flag.Bool("high-load", false, "use the Figure 9 watermarks (hw=50, lw=40)")
		policy       = flag.String("policy", "paper", "request distribution: paper | round-robin | closest")
		consistency  = flag.String("consistency", "none", "consistency regime: none | mixed")
		redirectors  = flag.Int("redirectors", 1, "number of hash-partitioned redirectors")
		poisson      = flag.Bool("poisson", false, "Poisson request arrivals instead of constant spacing")
		contention   = flag.Bool("contention", false, "FIFO link contention instead of fixed per-hop cost")
		csvDir       = flag.String("csv", "", "directory to write per-bucket series CSVs")
		traceFile    = flag.String("trace", "", "file to write a JSONL placement-event trace")
	)
	flag.Parse()

	cfg := radar.DefaultConfig(radar.Workload(*workloadName))
	cfg.Seed = *seed
	cfg.Objects = *objects
	cfg.Duration = *duration
	cfg.Static = *static
	cfg.HighLoad = *highLoad
	cfg.Policy = radar.Policy(*policy)
	cfg.Consistency = radar.Consistency(*consistency)
	cfg.NumRedirectors = *redirectors
	cfg.PoissonArrivals = *poisson
	cfg.LinkContention = *contention
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceWriter = f
	}

	start := time.Now()
	res, err := radar.Run(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n(wall time %v)\n", time.Since(start).Round(time.Millisecond))

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", *csvDir)
	}
	return nil
}

func writeCSVs(dir string, res *radar.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	series := map[string][]radar.Point{
		"bandwidth.csv": res.Bandwidth,
		"latency.csv":   res.Latency,
		"overhead.csv":  res.OverheadPct,
		"maxload.csv":   res.MaxLoad,
	}
	for name, pts := range series {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "time_s,value")
		for _, p := range pts {
			fmt.Fprintf(f, "%.1f,%g\n", p.T.Seconds(), p.V)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "hostload.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "time_s,actual,lower,upper")
	for _, s := range res.HostLoad {
		fmt.Fprintf(f, "%.1f,%g,%g,%g\n", s.T.Seconds(), s.Actual, s.Lower, s.Upper)
	}
	return f.Close()
}
