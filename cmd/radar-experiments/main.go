// Command radar-experiments regenerates every table and figure of the
// paper's evaluation (§6): the Figure 6 bandwidth/latency comparison, the
// Figure 7 overhead analysis, the Figure 8a/8b load plots, Table 2, the
// Figure 9 high-load rerun, and the ablations documented in DESIGN.md.
//
// Examples:
//
//	radar-experiments                  # full paper scale (several minutes)
//	radar-experiments -quick           # reduced scale (about a minute)
//	radar-experiments -only figures    # skip the ablations
//	radar-experiments -csv out/        # also dump the series data
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radar/internal/experiments"
	"radar/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed   = flag.Int64("seed", 1, "random seed")
		quick  = flag.Bool("quick", false, "reduced scale (2000 objects, halved durations)")
		only   = flag.String("only", "all", "what to run: all | figures | figure9 | ablations | multiseed")
		seeds  = flag.Int("seeds", 3, "number of seeds for -only multiseed")
		csvDir = flag.String("csv", "", "directory for per-figure series CSVs")
	)
	flag.Parse()
	opts := experiments.Options{Seed: *seed, Quick: *quick}
	start := time.Now()

	if *only == "all" || *only == "figures" {
		fmt.Println("== Paper suite (Table 1 parameters, low load) ==")
		suite, err := experiments.RunSuite(opts, false)
		if err != nil {
			return err
		}
		if err := suite.RenderAll(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := suite.WriteCSVs(*csvDir); err != nil {
				return err
			}
		}
	}

	if *only == "all" || *only == "figure9" {
		fmt.Println("== Figure 9 (high load: hw=50, lw=40) ==")
		suite, err := experiments.RunSuite(opts, true)
		if err != nil {
			return err
		}
		if err := suite.RenderAll(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := suite.WriteCSVs(*csvDir); err != nil {
				return err
			}
		}
	}

	if *only == "multiseed" {
		fmt.Printf("== Paper suite across %d seeds ==\n", *seeds)
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		ms, err := experiments.RunMultiSeed(opts, list, false)
		if err != nil {
			return err
		}
		if err := ms.Table().Render(os.Stdout); err != nil {
			return err
		}
	}

	if *only == "all" || *only == "ablations" {
		fmt.Println("== Ablations ==")
		ablations := []func(experiments.Options) (*report.Table, error){
			experiments.AblationDistribution,
			experiments.AblationFullReplication,
			experiments.AblationConstant,
			experiments.AblationThresholds,
			experiments.AblationBulkOffload,
			experiments.AblationNeighborOnly,
			experiments.AblationOracle,
			experiments.AblationRedirectors,
		}
		for _, ab := range ablations {
			tbl, err := ab(opts)
			if err != nil {
				return err
			}
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Second))
	return nil
}
