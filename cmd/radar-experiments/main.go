// Command radar-experiments regenerates every table and figure of the
// paper's evaluation (§6): the Figure 6 bandwidth/latency comparison, the
// Figure 7 overhead analysis, the Figure 8a/8b load plots, Table 2, the
// Figure 9 high-load rerun, and the ablations documented in DESIGN.md.
//
// Independent simulations fan out over a bounded worker pool (the
// experiments engine); -parallelism bounds the pool and every level
// produces identical tables.
//
// Examples:
//
//	radar-experiments                  # full paper scale, GOMAXPROCS-wide
//	radar-experiments -quick           # reduced scale
//	radar-experiments -parallelism 1   # sequential (same results, slower)
//	radar-experiments -only figures    # skip the ablations
//	radar-experiments -csv out/        # also dump the series data
//	radar-experiments -times           # include per-run wall-clock tables
//	radar-experiments -corpus          # scenario corpus: legacy vs availability-aware vs oracle
//	radar-experiments -scenario correlated-rack-failures   # one corpus scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radar/internal/experiments"
	"radar/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radar-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed        = flag.Int64("seed", 1, "random seed")
		quick       = flag.Bool("quick", false, "reduced scale (2000 objects, halved durations)")
		only        = flag.String("only", "all", "what to run: all | figures | figure9 | ablations | multiseed | faults | ctrl | corpus")
		corpus      = flag.Bool("corpus", false, "run the scenario corpus comparison (same as -only corpus)")
		scenarioSel = flag.String("scenario", "", "run the corpus comparison for one named scenario (see internal/scenario)")
		seeds       = flag.Int("seeds", 3, "number of seeds for -only multiseed")
		csvDir      = flag.String("csv", "", "directory for per-figure series CSVs")
		parallelism = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential); results are identical at any level")
		times       = flag.Bool("times", false, "also print per-run wall-clock tables (non-deterministic output)")
	)
	flag.Parse()
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: *parallelism}
	start := time.Now()

	if *corpus || *scenarioSel != "" || *only == "corpus" {
		fmt.Println("== Scenario corpus ==")
		var scens []scenario.Scenario
		if *scenarioSel != "" {
			sc, ok := scenario.ByName(*scenarioSel)
			if !ok {
				return fmt.Errorf("unknown scenario %q (known: %v)", *scenarioSel, scenario.Names())
			}
			scens = []scenario.Scenario{sc}
		}
		rep, err := experiments.RunCorpus(opts, scens)
		if err != nil {
			return err
		}
		if err := rep.Table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Second))
		return nil
	}

	if *only == "all" || *only == "figures" {
		fmt.Println("== Paper suite (Table 1 parameters, low load) ==")
		suite, err := experiments.RunSuite(opts, false)
		if err != nil {
			return err
		}
		if err := suite.RenderAll(os.Stdout); err != nil {
			return err
		}
		if *times {
			if err := suite.Timing().Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *csvDir != "" {
			if err := suite.WriteCSVs(*csvDir); err != nil {
				return err
			}
		}
	}

	if *only == "all" || *only == "figure9" {
		fmt.Println("== Figure 9 (high load: hw=50, lw=40) ==")
		suite, err := experiments.RunSuite(opts, true)
		if err != nil {
			return err
		}
		if err := suite.RenderAll(os.Stdout); err != nil {
			return err
		}
		if *times {
			if err := suite.Timing().Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *csvDir != "" {
			if err := suite.WriteCSVs(*csvDir); err != nil {
				return err
			}
		}
	}

	if *only == "multiseed" {
		fmt.Printf("== Paper suite across %d seeds ==\n", *seeds)
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		ms, err := experiments.RunMultiSeed(opts, list, false)
		if err != nil {
			return err
		}
		if err := ms.Table().Render(os.Stdout); err != nil {
			return err
		}
		if *times {
			if err := ms.Timing().Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if *only == "faults" {
		fmt.Println("== Fault injection ==")
		tbl, err := experiments.RunFaultScenario(opts)
		if err != nil {
			return err
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
	}

	if *only == "ctrl" {
		fmt.Println("== Unreliable control plane ==")
		tbl, err := experiments.RunCtrlScenario(opts)
		if err != nil {
			return err
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
	}

	if *only == "all" || *only == "ablations" {
		fmt.Println("== Ablations ==")
		tables, err := experiments.RunAblations(opts)
		if err != nil {
			return err
		}
		for _, tbl := range tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Second))
	return nil
}
