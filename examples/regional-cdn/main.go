// Regional CDN: popularity varies by region (the paper's regional
// workload — think localized news portals). The protocol should pull
// each region's preferred content into that region, collapsing
// transoceanic backbone traffic, while a uniform tail keeps every object
// reachable.
//
//	go run ./examples/regional-cdn
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radar"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "regional-cdn:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	cfg := radar.DefaultConfig(radar.Regional)
	cfg.Objects = 2000
	cfg.Duration = 30 * time.Minute

	static := cfg
	static.Static = true
	static.Duration = 8 * time.Minute
	staticRes, err := radar.RunContext(ctx, static)
	if err != nil {
		return err
	}
	dynRes, err := radar.RunContext(ctx, cfg)
	if err != nil {
		return err
	}

	s, d := staticRes.Summary, dynRes.Summary
	fmt.Println("Scenario: four regions, each preferring its own 1% slice of the namespace")
	fmt.Println("(90% of a region's requests target its slice).")
	fmt.Println()
	fmt.Printf("%-28s %15s %15s\n", "", "static", "dynamic")
	fmt.Printf("%-28s %15.3g %15.3g\n", "backbone byte-hops/s", s.BandwidthEquilibrium, d.BandwidthEquilibrium)
	fmt.Printf("%-28s %14.0fms %14.0fms\n", "average latency", s.LatencyEquilibrium*1000, d.LatencyEquilibrium*1000)
	fmt.Printf("%-28s %15.2f %15.2f\n", "replicas per object", s.AvgReplicas, d.AvgReplicas)
	reduction := 100 * (s.BandwidthEquilibrium - d.BandwidthEquilibrium) / s.BandwidthEquilibrium
	fmt.Printf("\nBackbone traffic reduction: %.1f%% (paper reports 90.1%% at full scale)\n", reduction)
	fmt.Println("\nBandwidth over time (dynamic run):")
	for i, p := range dynRes.Bandwidth {
		if i%5 == 0 {
			fmt.Printf("  t=%5v  %10.3g byte-hops/s\n", p.T, p.V)
		}
	}
	return nil
}
