// Hotspot relief: the paper's motivating scenario. A handful of hosting
// sites hold all the popular content (hot-sites workload) and are
// swamped far beyond their capacity; the protocol must dissolve the hot
// spots autonomously — each host decides on migration and replication
// from local knowledge only.
//
// The example runs the scenario twice — once with placement frozen
// (static mirroring, as if administrators never reacted) and once with
// the dynamic protocol — and compares the hottest server's load and the
// user-visible latency over time.
//
//	go run ./examples/hotspot-relief
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radar"
)

func main() {
	// The paper-scale runs take about a minute of wall time; Ctrl-C
	// cancels them promptly through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "hotspot-relief:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// Full paper scale: the cold-start hot spots take tens of simulated
	// minutes to dissolve, so this example simulates a 55-minute run
	// (about a minute of wall time).
	base := radar.DefaultConfig(radar.HotSites)
	base.Duration = 55 * time.Minute

	static := base
	static.Static = true
	static.Duration = 10 * time.Minute // saturation is visible immediately
	staticRes, err := radar.RunContext(ctx, static)
	if err != nil {
		return err
	}

	dynRes, err := radar.RunContext(ctx, base)
	if err != nil {
		return err
	}

	fmt.Println("Scenario: 90% of demand hits pages hosted by ~10% of the sites.")
	fmt.Println("(paper-scale run: 10,000 objects, 55 simulated minutes)")
	fmt.Println()
	fmt.Println("Static mirroring (no reaction):")
	fmt.Printf("  hottest server stays at %.0f req/s (its full capacity) indefinitely\n",
		staticRes.Summary.MaxLoadSettled)
	fmt.Printf("  average latency: %.1f s and growing; %d requests abandoned\n",
		staticRes.Summary.LatencyEquilibrium, staticRes.Summary.TimedOutRequests)
	fmt.Println()
	fmt.Println("Dynamic replication (the paper's protocol):")
	fmt.Printf("  hottest server peak %.0f req/s, settled %.0f req/s (high watermark 90)\n",
		dynRes.Summary.MaxLoadPeak, dynRes.Summary.MaxLoadSettled)
	fmt.Printf("  average latency settles at %.0f ms\n", dynRes.Summary.LatencyEquilibrium*1000)
	fmt.Printf("  replicas created per object: %.2f average\n", dynRes.Summary.AvgReplicas)
	fmt.Println()
	fmt.Println("Hottest-server load over time (dynamic run):")
	for i, p := range dynRes.MaxLoad {
		if i%15 == 0 { // one sample per 5 simulated minutes
			fmt.Printf("  t=%5v  max load %6.1f req/s %s\n", p.T, p.V, bar(p.V, 200))
		}
	}
	return nil
}

// bar renders a crude horizontal bar chart cell.
func bar(v, max float64) string {
	n := int(v / max * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
