// Quickstart: run the paper's protocol under a Zipf workload on the
// reconstructed UUNET backbone and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radar"
)

func main() {
	// Table 1 configuration, scaled down so the example finishes in a
	// few seconds. Drop the overrides to run at full paper scale.
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 2000
	cfg.Duration = 15 * time.Minute

	// Ctrl-C interrupts the simulation promptly instead of waiting the
	// run out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := radar.RunContext(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	s := res.Summary
	fmt.Println("Dynamic replication on the UUNET backbone (Zipf demand)")
	fmt.Printf("  requests served:        %d\n", s.TotalServed)
	fmt.Printf("  backbone traffic:       %.3g -> %.3g byte-hops/s\n", s.BandwidthInitial, s.BandwidthEquilibrium)
	fmt.Printf("  average latency:        %.0f ms -> %.0f ms\n", s.LatencyInitial*1000, s.LatencyEquilibrium*1000)
	fmt.Printf("  replicas per object:    %.2f (started at 1.00)\n", s.AvgReplicas)
	fmt.Printf("  protocol overhead:      %.2f%% of total traffic\n", s.OverheadPercent)
	fmt.Printf("  placement activity:     %d migrations, %d replications, %d drops\n",
		s.GeoMigrations+s.LoadMigrations, s.GeoReplications+s.LoadReplications, s.Drops)
	if s.Adjusted {
		fmt.Printf("  adjustment time:        %v\n", s.AdjustmentTime.Round(time.Minute))
	}
}
