// Trace replay: record the request stream of one run, then drive a second
// run from the recorded log — the trace-driven methodology of the paper's
// companion report. The same mechanism imports real request logs: write
// "gateway,object" lines and replay them against any placement policy.
//
//	go run ./examples/trace-replay
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radar/internal/object"
	"radar/internal/sim"
	"radar/internal/trace"
	"radar/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "trace-replay:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	u := object.Universe{Count: 2000, SizeBytes: 12 << 10}

	// Pass 1: run a Zipf workload and record every request it draws.
	zipf, err := workload.NewZipf(u)
	if err != nil {
		return err
	}
	recording := trace.NewRecording(zipf, 0)
	cfg := sim.DefaultConfig(recording, 1)
	cfg.Universe = u
	cfg.Duration = 10 * time.Minute
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	first, err := s.RunContext(ctx)
	if err != nil {
		return err
	}
	log := recording.Log()
	fmt.Printf("pass 1 (live zipf):    %d requests recorded, bandwidth eq %.3g B·hops/s\n",
		len(log), first.BandwidthStats.Equilibrium)

	// Persist and reload the log, as an external trace would be.
	f, err := os.CreateTemp("", "radar-trace-*.csv")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := trace.WriteRequests(f, log); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf, err := os.Open(f.Name())
	if err != nil {
		return err
	}
	defer rf.Close()
	reloaded, err := trace.ReadRequests(rf)
	if err != nil {
		return err
	}

	// Pass 2: replay the identical request stream.
	replay, err := trace.NewReplay("zipf-replay", reloaded)
	if err != nil {
		return err
	}
	cfg2 := sim.DefaultConfig(replay, 1)
	cfg2.Universe = u
	cfg2.Duration = 10 * time.Minute
	s2, err := sim.New(cfg2)
	if err != nil {
		return err
	}
	second, err := s2.RunContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("pass 2 (trace replay): %d requests served,  bandwidth eq %.3g B·hops/s\n",
		second.TotalServed, second.BandwidthStats.Equilibrium)

	diff := 100 * (second.BandwidthStats.Equilibrium - first.BandwidthStats.Equilibrium) /
		first.BandwidthStats.Equilibrium
	fmt.Printf("\nreplay reproduces the live run's traffic within %.1f%%\n", diff)
	fmt.Printf("(the log file format is plain \"gateway,object\" CSV — %d bytes at %s —\n", fileSize(f.Name()), f.Name())
	fmt.Println(" so real access logs can be converted and replayed the same way)")
	return nil
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}
