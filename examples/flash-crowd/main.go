// Flash crowd: responsiveness to a demand-pattern change, the protocol's
// explicit design goal (§1.2). The run starts under a calm Zipf demand;
// fifteen minutes in, a flash crowd slams the pages of a few sites
// (hot-sites demand). The protocol must notice, bulk-relocate objects
// (en masse, thanks to the Theorem 1-4 load bounds), and restore normal
// service without any administrator in the loop.
//
//	go run ./examples/flash-crowd
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radar"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flash-crowd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 2000
	cfg.Duration = 50 * time.Minute
	cfg.SwitchTo = radar.HotSites
	cfg.SwitchAt = 15 * time.Minute

	res, err := radar.RunContext(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Println("Timeline: Zipf demand, flash crowd hits at t=15m (hot-sites demand).")
	fmt.Println()
	fmt.Printf("%8s  %12s  %10s  %s\n", "time", "latency", "max load", "")
	for i := range res.Latency {
		if i%3 != 0 {
			continue
		}
		p := res.Latency[i]
		ml := 0.0
		for _, m := range res.MaxLoad {
			if m.T <= p.T {
				ml = m.V
			}
		}
		marker := ""
		switch {
		case p.T == 15*time.Minute:
			marker = "<- flash crowd hits"
		case p.T == 0:
			marker = "<- calm Zipf demand"
		}
		fmt.Printf("%8v  %10.0fms  %10.0f  %s\n", p.T, p.V*1000, ml, marker)
	}
	fmt.Println()
	s := res.Summary
	fmt.Printf("placement activity: %d migrations, %d replications (%d of them load-driven), %d drops\n",
		s.GeoMigrations+s.LoadMigrations, s.GeoReplications+s.LoadReplications, s.LoadReplications+s.LoadMigrations, s.Drops)
	fmt.Printf("requests abandoned during the crowd: %d of %d\n", s.TimedOutRequests, s.TotalServed+s.TimedOutRequests)
	fmt.Printf("latency settles at %.0f ms by the end of the run\n", s.LatencyEquilibrium*1000)
	return nil
}
