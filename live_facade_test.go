package radar_test

import (
	"errors"
	"testing"
	"time"

	"radar"
)

// TestLiveGroupValidation: the Live group validates in isolation and its
// incompatibilities with simulation-only subsystems are caught at
// Validate time as ConfigErrors.
func TestLiveGroupValidation(t *testing.T) {
	if err := (radar.Live{LiveMaxInflightCreates: -1}).Validate(); !errors.Is(err, radar.ErrBadConfig) {
		t.Errorf("negative inflight limit: err = %v, want ErrBadConfig", err)
	}
	if err := (radar.Live{LiveMode: true, LiveMaxInflightCreates: 8}).Validate(); err != nil {
		t.Errorf("valid live group rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*radar.Config)
	}{
		{"fault schedule", func(c *radar.Config) { c.Faults.FaultSchedule = "crash:9@3m+5m" }},
		{"store stack", func(c *radar.Config) { c.Storage.Store = "cache(mem:64,disk:5ms)" }},
		{"mixed consistency", func(c *radar.Config) { c.Consistency = radar.ConsistencyMixed }},
		{"link contention", func(c *radar.Config) { c.LinkContention = true }},
		{"sharded engine", func(c *radar.Config) { c.Shards = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := radar.DefaultConfig(radar.Zipf)
			cfg.Live.LiveMode = true
			tc.mutate(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, radar.ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			var ce *radar.ConfigError
			if !errors.As(err, &ce) || ce.Field != "Live.LiveMode" {
				t.Fatalf("err = %v, want ConfigError on Live.LiveMode", err)
			}
		})
	}
}

// TestLiveFreeRunningNeedsLiveMode: free-running is a refinement of live
// mode, not a standalone switch.
func TestLiveFreeRunningNeedsLiveMode(t *testing.T) {
	err := (radar.Live{LiveFreeRunning: true}).Validate()
	if !errors.Is(err, radar.ErrBadConfig) {
		t.Fatalf("LiveFreeRunning without LiveMode: err = %v, want ErrBadConfig", err)
	}
	var ce *radar.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Live.LiveFreeRunning" {
		t.Fatalf("err = %v, want ConfigError on Live.LiveFreeRunning", err)
	}
	if err := (radar.Live{LiveMode: true, LiveFreeRunning: true}).Validate(); err != nil {
		t.Fatalf("valid free-running group rejected: %v", err)
	}
}

// TestRunSeedsRejectsLiveMode: live mode runs one fleet at a time.
func TestRunSeedsRejectsLiveMode(t *testing.T) {
	cfg := radar.DefaultConfig(radar.Uniform)
	cfg.LiveMode = true
	if _, err := radar.RunSeeds(cfg, []int64{1, 2}, 2); !errors.Is(err, radar.ErrBadConfig) {
		t.Errorf("RunSeeds with LiveMode: err = %v, want ErrBadConfig", err)
	}
}

// TestRunLiveMode: the facade stands up a loopback fleet of real HTTP
// servers over the full backbone, replays the workload, and reports the
// simulation schema with no failed requests.
func TestRunLiveMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet replay over 53 loopback listeners; skipped in -short")
	}
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 106
	cfg.Duration = 15 * time.Second
	cfg.Live.LiveMode = true
	res, err := radar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.TotalServed == 0 {
		t.Error("live fleet served no requests")
	}
	if s.FailedRequests != 0 || s.HostFailures != 0 {
		t.Errorf("healthy live fleet reported %d failed requests, %d crashes", s.FailedRequests, s.HostFailures)
	}
	if s.TimedOutRequests != 0 {
		t.Errorf("%d timed-out requests at nominal load", s.TimedOutRequests)
	}
}

// TestRunLiveFreeRunning: the facade's free-running path stands up the
// fleet on wall clocks and generates real-time load; Duration is wall
// time, so a short run finishes fast even over the full backbone.
func TestRunLiveFreeRunning(t *testing.T) {
	if testing.Short() {
		t.Skip("free-running fleet over 53 loopback listeners; skipped in -short")
	}
	cfg := radar.DefaultConfig(radar.Zipf)
	cfg.Objects = 106
	cfg.Duration = 2 * time.Second
	cfg.Live.LiveMode = true
	cfg.Live.LiveFreeRunning = true
	res, err := radar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.TotalServed == 0 {
		t.Error("free-running fleet served no requests")
	}
	if s.FailedRequests != 0 {
		t.Errorf("healthy free-running fleet reported %d failed requests", s.FailedRequests)
	}
}
